"""NoC topologies for every design point.

The paper uses two separate physical networks (request and reply) to avoid
protocol deadlock (Section VII); we model each logical NoC as a pair of
crossbars — ``req`` (sources → destinations) and ``rep`` (destinations →
sources).

Topology per design:

* **Baseline / CDXBar** — the L1s are inside the cores, so there is no
  NoC#1; NoC#2 connects the 80 cores to the 32 L2 slices.  The baseline
  uses one 80x32 crossbar (+ reply twin); CDXBar replaces it with a
  two-stage hierarchical crossbar (Figure 19a's comparator): 10 first-stage
  8x8 crossbars (one per group of 8 cores) feeding 8 second-stage 10x4
  crossbars (one per L2 column).
* **DC-L1 family** — NoC#1 is one ``N x M`` crossbar per cluster (``N x 1``
  for PrY, 80x40 for Sh40); NoC#2 is either per-range ``Z x O`` crossbars
  (clustered, Figure 10) or a single ``Y x 32`` crossbar.
* **SingleL1** — Section II-A's hypothetical: NoC#1 is an 80x1 funnel whose
  DC-L1-side port has the *aggregate* baseline L1 bandwidth (the paper
  preserves total capacity and bandwidth in this thought experiment).

Service times are expressed in core cycles: at the baseline clock ratio
(1400 MHz core / 700 MHz NoC) one 32 B flit occupies a port for 2 core
cycles; frequency multipliers (``+Boost``) divide that.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.clusters import ClusterGeometry
from repro.core.designs import DesignKind, DesignSpec
from repro.noc.crossbar import Crossbar

# SimHeat twin-path manifest: the route factory specializes per design, so
# structural equivalence is delegated to the differential confirmer and the
# fingerprint-identity tests ("delegated" mode); the static pass still
# enforces SH603/SH604 (the factory must be wired in, and must never call a
# slow route method from a fast closure).
FAST_PATH_PAIRS = [
    ("NoCTopology.make_fast_routes",
     ("NoCTopology.core_to_dcl1", "NoCTopology.dcl1_to_core",
      "NoCTopology.to_l2", "NoCTopology.from_l2"),
     "delegated", {}),
    # SimVec batched request route (core -> DC-L1 home): one call per
    # batch of same-cycle issues; per-item timing identical to the
    # scalar fast route by construction.
    ("NoCTopology.make_batch_routes", "NoCTopology.core_to_dcl1",
     "delegated", {}),
]


class NoCTopology:
    """Instantiated crossbars + routing for one design point."""

    def __init__(
        self,
        spec: DesignSpec,
        num_cores: int,
        num_l2: int,
        cycles_per_flit: float,
        latency: float,
        geometry: Optional[ClusterGeometry] = None,
        cdxbar_group_size: int = 8,
        cdxbar_columns: int = 8,
        short_link_mm: float = 3.3,
        long_link_mm: float = 12.3,
    ):
        self.spec = spec
        self.num_cores = num_cores
        self.num_l2 = num_l2
        self.geometry = geometry
        self.cdxbar_group_size = cdxbar_group_size
        self.cdxbar_columns = cdxbar_columns

        s1 = cycles_per_flit / spec.noc1_freq_mult
        l1 = latency / spec.noc1_freq_mult
        s2 = cycles_per_flit / spec.noc2_freq_mult
        l2 = latency / spec.noc2_freq_mult

        self.noc1_req: List[Crossbar] = []
        self.noc1_rep: List[Crossbar] = []
        self.noc2_req: List[Crossbar] = []
        self.noc2_rep: List[Crossbar] = []
        # CDXBar second stage (first stage reuses the noc2 lists).
        self.cdx2_req: List[Crossbar] = []
        self.cdx2_rep: List[Crossbar] = []

        kind = spec.kind
        if kind == DesignKind.BASELINE:
            self.noc2_req = [Crossbar("noc2.req", num_cores, num_l2, s2, l2, long_link_mm)]
            self.noc2_rep = [Crossbar("noc2.rep", num_l2, num_cores, s2, l2, long_link_mm)]
        elif kind == DesignKind.CDXBAR:
            g, k = cdxbar_group_size, cdxbar_columns
            if num_cores % g or num_l2 % k:
                raise ValueError("CDXBar group/column sizes must divide cores/L2s")
            groups = num_cores // g
            per_col = num_l2 // k
            self.noc2_req = [
                Crossbar(f"cdx1.req[{i}]", g, k, s1, l1, short_link_mm) for i in range(groups)
            ]
            self.noc2_rep = [
                Crossbar(f"cdx1.rep[{i}]", k, g, s1, l1, short_link_mm) for i in range(groups)
            ]
            self.cdx2_req = [
                Crossbar(f"cdx2.req[{c}]", groups, per_col, s2, l2, long_link_mm)
                for c in range(k)
            ]
            self.cdx2_rep = [
                Crossbar(f"cdx2.rep[{c}]", per_col, groups, s2, l2, long_link_mm)
                for c in range(k)
            ]
        else:
            if geometry is None:
                raise ValueError(f"{spec} requires a ClusterGeometry")
            n, m, z = geometry.cores_per_cluster, geometry.dcl1_per_cluster, geometry.num_clusters
            if kind == DesignKind.SINGLE_L1:
                # One funnel crossbar with aggregate-preserving node-side port.
                agg = 1.0 / num_cores
                xb_req = Crossbar("noc1.req[0]", n, m, s1, l1, short_link_mm)
                xb_rep = Crossbar("noc1.rep[0]", m, n, s1, l1, short_link_mm)
                xb_req.out_ports[0].service = s1 * agg
                xb_rep.in_ports[0].service = s1 * agg
                self.noc1_req = [xb_req]
                self.noc1_rep = [xb_rep]
            else:
                self.noc1_req = [
                    Crossbar(f"noc1.req[{i}]", n, m, s1, l1, short_link_mm) for i in range(z)
                ]
                self.noc1_rep = [
                    Crossbar(f"noc1.rep[{i}]", m, n, s1, l1, short_link_mm) for i in range(z)
                ]
            if geometry.noc2_partitioned:
                o = geometry.l2_per_range
                self.noc2_req = [
                    Crossbar(f"noc2.req[r{r}]", z, o, s2, l2, long_link_mm) for r in range(m)
                ]
                self.noc2_rep = [
                    Crossbar(f"noc2.rep[r{r}]", o, z, s2, l2, long_link_mm) for r in range(m)
                ]
            else:
                y = geometry.num_dcl1
                mult = num_cores if kind == DesignKind.SINGLE_L1 else 1
                self.noc2_req = [Crossbar("noc2.req", y, num_l2, s2, l2, long_link_mm)]
                self.noc2_rep = [Crossbar("noc2.rep", num_l2, y, s2, l2, long_link_mm)]
                if mult > 1:
                    # The single node's NoC#2 ports carry all misses; scale
                    # them to the aggregate-preserving assumption.
                    for p in self.noc2_req[0].in_ports:
                        p.service = s2 / mult
                    for p in self.noc2_rep[0].out_ports:
                        p.service = s2 / mult

    # -- NoC#1 routing (cores <-> DC-L1 nodes) --------------------------------

    def core_to_dcl1(self, now: float, core_id: int, dcl1_id: int, flits: int) -> float:
        """Request traversal on NoC#1; returns arrival time at the node."""
        geo = self.geometry
        z = geo.cluster_of_core(core_id) if len(self.noc1_req) > 1 else 0
        xb = self.noc1_req[z]
        return xb.traverse(
            now, core_id % geo.cores_per_cluster, dcl1_id % geo.dcl1_per_cluster, flits
        )

    def dcl1_to_core(self, now: float, dcl1_id: int, core_id: int, flits: int) -> float:
        """Reply traversal on NoC#1; returns arrival time at the core."""
        geo = self.geometry
        z = geo.cluster_of_core(core_id) if len(self.noc1_rep) > 1 else 0
        xb = self.noc1_rep[z]
        return xb.traverse(
            now, dcl1_id % geo.dcl1_per_cluster, core_id % geo.cores_per_cluster, flits
        )

    # -- NoC#2 routing (L1 level <-> L2 slices) --------------------------------

    def to_l2(self, now: float, src: int, l2_slice: int, flits: int) -> float:
        """Request traversal on NoC#2.

        ``src`` is a DC-L1 node id for decoupled designs, a core id for
        BASELINE/CDXBAR.
        """
        if self.spec.kind == DesignKind.CDXBAR:
            g = src // self.cdxbar_group_size
            col = l2_slice % self.cdxbar_columns
            t = self.noc2_req[g].traverse(now, src % self.cdxbar_group_size, col, flits)
            return self.cdx2_req[col].traverse(t, g, l2_slice // self.cdxbar_columns, flits)
        geo = self.geometry
        if geo is not None and geo.noc2_partitioned:
            r = geo.dcl1_range_of(src)
            xb = self.noc2_req[r]
            return xb.traverse(now, geo.cluster_of_dcl1(src), l2_slice // geo.dcl1_per_cluster, flits)
        return self.noc2_req[0].traverse(now, src, l2_slice, flits)

    def from_l2(self, now: float, l2_slice: int, dst: int, flits: int) -> float:
        """Reply traversal on NoC#2 back to ``dst`` (node or core)."""
        if self.spec.kind == DesignKind.CDXBAR:
            g = dst // self.cdxbar_group_size
            col = l2_slice % self.cdxbar_columns
            t = self.cdx2_rep[col].traverse(now, l2_slice // self.cdxbar_columns, g, flits)
            return self.noc2_rep[g].traverse(t, col, dst % self.cdxbar_group_size, flits)
        geo = self.geometry
        if geo is not None and geo.noc2_partitioned:
            r = geo.dcl1_range_of(dst)
            xb = self.noc2_rep[r]
            return xb.traverse(now, l2_slice // geo.dcl1_per_cluster, geo.cluster_of_dcl1(dst), flits)
        return self.noc2_rep[0].traverse(now, l2_slice, dst, flits)

    # -- prebound fast routes ----------------------------------------------------

    def make_fast_routes(self):
        """Build uninstrumented route closures, resolved once per design.

        Returns ``(core_to_dcl1, dcl1_to_core, to_l2, from_l2)`` where each
        entry is a callable with the same signature as the corresponding
        method, or ``None`` when the design has no such hop (NoC#1 entries
        for BASELINE/CDXBAR).  The closures hoist every per-design decision
        the methods re-derive per call — which crossbar list, which port
        arithmetic — into captured locals, and route through
        :meth:`Crossbar.traverse_fast <repro.noc.crossbar.Crossbar.traverse_fast>`
        (no ledger validation), so they are only selected at wiring time
        when no sanitizer is attached.  Timing results are identical to
        the plain methods by construction.
        """
        geo = self.geometry
        core_to_dcl1 = dcl1_to_core = None
        if self.noc1_req:
            n, m = geo.cores_per_cluster, geo.dcl1_per_cluster
            if len(self.noc1_req) > 1:
                req_xbs, rep_xbs = self.noc1_req, self.noc1_rep

                def core_to_dcl1(now, core_id, dcl1_id, flits):
                    return req_xbs[core_id // n].traverse_fast(
                        now, core_id % n, dcl1_id % m, flits
                    )

                def dcl1_to_core(now, dcl1_id, core_id, flits):
                    return rep_xbs[core_id // n].traverse_fast(
                        now, dcl1_id % m, core_id % n, flits
                    )
            else:
                req_xb, rep_xb = self.noc1_req[0], self.noc1_rep[0]

                def core_to_dcl1(now, core_id, dcl1_id, flits):
                    return req_xb.traverse_fast(now, core_id % n, dcl1_id % m, flits)

                def dcl1_to_core(now, dcl1_id, core_id, flits):
                    return rep_xb.traverse_fast(now, dcl1_id % m, core_id % n, flits)

        if self.spec.kind == DesignKind.CDXBAR:
            g_size, cols = self.cdxbar_group_size, self.cdxbar_columns
            stage1_req, stage2_req = self.noc2_req, self.cdx2_req
            stage1_rep, stage2_rep = self.noc2_rep, self.cdx2_rep

            def to_l2(now, src, l2_slice, flits):
                g = src // g_size
                col = l2_slice % cols
                t = stage1_req[g].traverse_fast(now, src % g_size, col, flits)
                return stage2_req[col].traverse_fast(t, g, l2_slice // cols, flits)

            def from_l2(now, l2_slice, dst, flits):
                g = dst // g_size
                col = l2_slice % cols
                t = stage2_rep[col].traverse_fast(now, l2_slice // cols, g, flits)
                return stage1_rep[g].traverse_fast(t, col, dst % g_size, flits)
        elif geo is not None and geo.noc2_partitioned:
            m2 = geo.dcl1_per_cluster
            req_ranges, rep_ranges = self.noc2_req, self.noc2_rep

            def to_l2(now, src, l2_slice, flits):
                return req_ranges[src % m2].traverse_fast(
                    now, src // m2, l2_slice // m2, flits
                )

            def from_l2(now, l2_slice, dst, flits):
                return rep_ranges[dst % m2].traverse_fast(
                    now, l2_slice // m2, dst // m2, flits
                )
        else:
            noc2_req_xb, noc2_rep_xb = self.noc2_req[0], self.noc2_rep[0]

            def to_l2(now, src, l2_slice, flits):
                return noc2_req_xb.traverse_fast(now, src, l2_slice, flits)

            def from_l2(now, l2_slice, dst, flits):
                return noc2_rep_xb.traverse_fast(now, l2_slice, dst, flits)

        return core_to_dcl1, dcl1_to_core, to_l2, from_l2

    def make_batch_routes(self):
        """Build the SimVec batched request route, or ``None``.

        Returns ``core_to_dcl1_batch(times, core_ids, dcl1_ids, flits,
        out)``: traverse NoC#1 for item ``i`` departing at ``times[i]``,
        appending each arrival time to ``out`` in order — exactly
        equivalent to one :meth:`core_to_dcl1` fast-route call per item,
        with the per-design port arithmetic resolved once and the
        traversals delegated to one
        :meth:`~repro.noc.crossbar.Crossbar.traverse_run_fast` call when
        the design has a single NoC#1 crossbar (every single-cluster
        design: the port indices *are* the core/node ids).  Multi-cluster
        designs fall back to a per-item loop over the scalar fast route.
        ``None`` for designs with no NoC#1 (BASELINE/CDXBAR), mirroring
        :meth:`make_fast_routes`.
        """
        if not self.noc1_req:
            return None
        geo = self.geometry
        n, m = geo.cores_per_cluster, geo.dcl1_per_cluster
        if len(self.noc1_req) == 1 and n == self.num_cores:
            # Single cluster: core_id % n == core_id and dcl1_id % m ==
            # dcl1_id (ids are already cluster-local), so the id lists
            # are the port-index lists.
            req_xb = self.noc1_req[0]

            def core_to_dcl1_batch(times, core_ids, dcl1_ids, flits, out):
                req_xb.traverse_run_fast(times, core_ids, dcl1_ids, flits, out)
        else:
            req_xbs = self.noc1_req

            def core_to_dcl1_batch(times, core_ids, dcl1_ids, flits, out):
                append = out.append
                for i, t in enumerate(times):
                    core_id = core_ids[i]
                    append(req_xbs[core_id // n].traverse_fast(
                        t, core_id % n, dcl1_ids[i] % m, flits
                    ))

        return core_to_dcl1_batch

    # -- metrics ----------------------------------------------------------------

    def all_crossbars(self) -> List[Crossbar]:
        return (
            self.noc1_req + self.noc1_rep + self.noc2_req + self.noc2_rep
            + self.cdx2_req + self.cdx2_rep
        )

    def total_flit_hops(self) -> int:
        """Total flit-port-traversals across all crossbars (dynamic energy)."""
        return sum(xb.flit_hops for xb in self.all_crossbars())

    def max_core_reply_link_utilization(self, cycles: float) -> float:
        """Max utilization of links delivering data *to* cores (Fig. 2)."""
        if self.noc1_rep:
            return max(xb.max_out_utilization(cycles) for xb in self.noc1_rep)
        return max(xb.max_out_utilization(cycles) for xb in self.noc2_rep)


def build_topology(spec: DesignSpec, num_cores: int, num_l2: int,
                   cycles_per_flit: float, latency: float,
                   geometry: Optional[ClusterGeometry] = None,
                   **kwargs) -> NoCTopology:
    """Convenience constructor mirroring :class:`NoCTopology`."""
    return NoCTopology(
        spec, num_cores, num_l2, cycles_per_flit, latency, geometry, **kwargs
    )
