"""Interconnect substrate: crossbar timing, per-design topologies, DSENT-like models."""

from repro.noc.crossbar import Crossbar
from repro.noc.dsent import CrossbarShape, DsentModel
from repro.noc.topology import NoCTopology, build_topology

__all__ = ["Crossbar", "CrossbarShape", "DsentModel", "NoCTopology", "build_topology"]
