"""Hierarchical two-stage crossbar (CDXBar) geometry.

The Figure 19a comparator models Zhao et al.'s two-stage hierarchical
crossbar: cores keep their private L1s, but the monolithic 80x32 NoC is
replaced by small first-stage crossbars (one per group of neighbouring
cores) feeding second-stage crossbars (one per L2 column).  Its design
goal is NoC scalability/area, *not* performance — it does nothing about
data replication — which is exactly the contrast the paper draws.

The timing lives in :class:`repro.noc.topology.NoCTopology`; this module
captures the geometry and its DSENT inventory so the experiment code and
the area/power analyses agree on one definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.noc.dsent import CrossbarShape


@dataclass(frozen=True)
class CDXBarGeometry:
    """Two-stage hierarchical crossbar layout."""

    num_cores: int = 80
    num_l2: int = 32
    group_size: int = 8  # cores per first-stage crossbar
    columns: int = 8  # second-stage crossbars (L2 columns)

    def __post_init__(self):
        if self.num_cores % self.group_size:
            raise ValueError("group size must divide the core count")
        if self.num_l2 % self.columns:
            raise ValueError("column count must divide the L2 slice count")

    @property
    def num_groups(self) -> int:
        return self.num_cores // self.group_size

    @property
    def l2_per_column(self) -> int:
        return self.num_l2 // self.columns

    def stage1_shape(self) -> CrossbarShape:
        """First stage: one ``group_size x columns`` crossbar per group."""
        return CrossbarShape(self.num_groups, self.group_size, self.columns, 3.3)

    def stage2_shape(self) -> CrossbarShape:
        """Second stage: one ``num_groups x l2_per_column`` crossbar per column."""
        return CrossbarShape(self.columns, self.num_groups, self.l2_per_column, 12.3)

    def inventory(self) -> List[CrossbarShape]:
        return [self.stage1_shape(), self.stage2_shape()]

    def __str__(self) -> str:
        s1, s2 = self.stage1_shape(), self.stage2_shape()
        return (
            f"CDXBar: {s1.count}x({s1.n_in}x{s1.n_out}) -> "
            f"{s2.count}x({s2.n_in}x{s2.n_out})"
        )
