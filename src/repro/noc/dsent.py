"""DSENT-like analytical NoC area / power / frequency model.

The paper uses DSENT [19] at 22 nm to compare crossbar configurations.
Only *relative* trends feed its argument:

* small crossbars are smaller and cooler than one big crossbar
  (Figures 6 and 12),
* small crossbars clock higher (Figure 13b) — the enabler for ``+Boost``,
* per-router buffer overheads mean many tiny routers are not free
  (the Pr40 static-power discussion in Section IV-B).

We reproduce those trends with a three-component analytical model whose
constants were calibrated (least squares) against every relative number
the paper reports:

* **area** ``= A*(n_in*n_out + 4.33*(n_in+n_out))`` per crossbar — matches
  the paper's Pr40 −28%, Pr20 −54%, Pr10 −67%, Sh40 +69%, Sh40+C10 −50%,
  C5/C20 −45% to within ~2 points;
* **static power** ``= D*(n_in*n_out)^1.5 + E*n_in`` per crossbar (input
  buffers dominate; the crossbar term grows superlinearly in radix) plus a
  small per-direct-link constant — matches Pr80 +1%, Pr40 −4% (buffers of
  40 extra routers offset the smaller switches, exactly the paper's
  explanation), Sh40 +57→+61%, C5 −15%, C10 −16%, C20 −14%;
* **max frequency** ``∝ (n_in*n_out)^-1/4`` — an 8x4 crossbar clocks well
  above 2x the baseline NoC frequency while 80x32 / 80x40 cannot reach
  2x700 MHz, matching Figure 13b and the boosted-baseline discussion.

Dynamic energy is charged per flit-hop, proportional to flit width and
link length (short 3.3 mm cluster links vs long 12.3 mm NoC#2 links, the
paper's Section VIII estimates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.core.clusters import ClusterGeometry
from repro.core.designs import DesignKind, DesignSpec


@dataclass(frozen=True)
class CrossbarShape:
    """``count`` crossbars of ``n_in x n_out`` with ``link_mm`` links."""

    count: int
    n_in: int
    n_out: int
    link_mm: float = 1.0

    @property
    def is_direct_link(self) -> bool:
        return self.n_in == 1 and self.n_out == 1


class DsentModel:
    """Analytical crossbar area/power/frequency model (22 nm calibration)."""

    # Area model (relative units; calibrated, see module docstring).
    AREA_PRODUCT = 1.0
    AREA_PORT = 4.33
    # Absolute scale: baseline 80x32 crossbar network ~= 20 mm^2 at 22 nm.
    AREA_MM2_PER_UNIT = 20.0 / (80 * 32 + 4.33 * (80 + 32))
    AREA_LINK_UNIT = 3.0  # one 32B direct link, relative units

    # Static power model (relative units; calibrated).
    STATIC_PRODUCT = 1.32879e-3  # * (n_in*n_out)^1.5  (crossbar + allocator)
    STATIC_EXP = 1.5
    STATIC_BUFFER = 2.58127  # * n_in                  (input buffers)
    STATIC_LINK = 0.05  # per 1x1 direct link
    # Absolute scale: baseline NoC static power ~= 2 W.
    STATIC_W_PER_UNIT = 2.0 / (1.32879e-3 * (80 * 32) ** 1.5 + 2.58127 * 80)

    # Max frequency model: f = F_REF * (R_REF / sqrt(n_in*n_out))^0.5.
    FREQ_REF_GHZ = 0.8  # an 80x32 crossbar tops out just above 700 MHz
    RADIX_REF = (80 * 32) ** 0.5

    # Dynamic energy: joules per flit-hop per mm of link, relative scale
    # chosen so the baseline's dynamic power is ~0.64x its static power
    # (back-solved from Figure 18a's -16% static / +20% dynamic / -2% total).
    DYN_ENERGY_PER_FLIT_MM = 1.0

    # -- per-crossbar primitives ------------------------------------------------

    @classmethod
    def crossbar_area_units(cls, n_in: int, n_out: int) -> float:
        if n_in == 1 and n_out == 1:
            return cls.AREA_LINK_UNIT
        return cls.AREA_PRODUCT * n_in * n_out + cls.AREA_PORT * (n_in + n_out)

    @classmethod
    def crossbar_static_units(cls, n_in: int, n_out: int) -> float:
        if n_in == 1 and n_out == 1:
            return cls.STATIC_LINK
        return (
            cls.STATIC_PRODUCT * (n_in * n_out) ** cls.STATIC_EXP
            + cls.STATIC_BUFFER * n_in
        )

    @classmethod
    def max_frequency_ghz(cls, n_in: int, n_out: int) -> float:
        """Maximum operating frequency of an ``n_in x n_out`` crossbar."""
        radix = (n_in * n_out) ** 0.5
        return cls.FREQ_REF_GHZ * (cls.RADIX_REF / radix) ** 0.5

    @classmethod
    def supports_frequency(cls, n_in: int, n_out: int, ghz: float) -> bool:
        """Can this crossbar be clocked at ``ghz``?"""
        return cls.max_frequency_ghz(n_in, n_out) >= ghz

    # -- aggregate over an inventory ---------------------------------------------

    @classmethod
    def area_units(cls, shapes: Iterable[CrossbarShape]) -> float:
        return sum(s.count * cls.crossbar_area_units(s.n_in, s.n_out) for s in shapes)

    @classmethod
    def area_mm2(cls, shapes: Iterable[CrossbarShape]) -> float:
        return cls.area_units(shapes) * cls.AREA_MM2_PER_UNIT

    @classmethod
    def static_units(cls, shapes: Iterable[CrossbarShape]) -> float:
        return sum(s.count * cls.crossbar_static_units(s.n_in, s.n_out) for s in shapes)

    @classmethod
    def static_power_w(cls, shapes: Iterable[CrossbarShape]) -> float:
        return cls.static_units(shapes) * cls.STATIC_W_PER_UNIT

    @classmethod
    def dynamic_energy_units(cls, flit_hops_by_link_mm: Sequence[Tuple[int, float]]) -> float:
        """Energy for ``(flit_hops, link_mm)`` contributions."""
        return sum(
            hops * mm * cls.DYN_ENERGY_PER_FLIT_MM for hops, mm in flit_hops_by_link_mm
        )


def design_inventory(
    spec: DesignSpec,
    num_cores: int,
    num_l2: int,
    short_link_mm: float = 3.3,
    long_link_mm: float = 12.3,
    cdxbar_group_size: int = 8,
    cdxbar_columns: int = 8,
) -> List[CrossbarShape]:
    """Crossbar inventory of a design point (one logical network; the
    request/reply pair doubles everything uniformly and cancels in the
    normalized comparisons the paper reports)."""
    if spec.kind == DesignKind.BASELINE:
        return [CrossbarShape(1, num_cores, num_l2, long_link_mm)]
    if spec.kind == DesignKind.CDXBAR:
        g, k = cdxbar_group_size, cdxbar_columns
        return [
            CrossbarShape(num_cores // g, g, k, short_link_mm),
            CrossbarShape(k, num_cores // g, num_l2 // k, long_link_mm),
        ]
    geo = ClusterGeometry.from_design(spec, num_cores, num_l2)
    shapes = [
        CrossbarShape(cnt, i, o, short_link_mm) for cnt, i, o in geo.noc1_shapes()
    ]
    shapes += [
        CrossbarShape(cnt, i, o, long_link_mm) for cnt, i, o in geo.noc2_shapes()
    ]
    return shapes


def noc_area_mm2(spec: DesignSpec, num_cores: int = 80, num_l2: int = 32) -> float:
    """Total NoC crossbar area of a design point."""
    return DsentModel.area_mm2(design_inventory(spec, num_cores, num_l2))


def noc_static_power_w(spec: DesignSpec, num_cores: int = 80, num_l2: int = 32) -> float:
    """Total NoC static power of a design point."""
    return DsentModel.static_power_w(design_inventory(spec, num_cores, num_l2))
