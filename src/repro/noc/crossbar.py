"""Crossbar timing model.

A crossbar has ``num_in`` input ports and ``num_out`` output ports, each a
reservation :class:`~repro.sim.resources.Server`.  A packet of ``flits``
flits traversing ``(in_port, out_port)`` serializes on both ports (input
buffering, then switch traversal), then emerges after the crossbar's
pipeline latency.  Per-flit service time encodes the NoC clock relative to
the core clock: at the paper's baseline (core 1400 MHz, NoC 700 MHz) one
flit costs two core cycles per port; the ``+Boost`` design halves that on
NoC#1 by doubling the crossbar frequency (Section VI-C).

Flit-hop counts are accumulated per crossbar for the dynamic-energy model
(Figure 18a).
"""

from __future__ import annotations

from repro.sim.resources import ServerGroup

# SimHeat twin-path manifest: ``traverse_fast`` hand-inlines the two port
# reservations, so the analyzer matches each inlined block against the
# ``Server.reserve_fast`` template ("inline" mode) and requires one block
# per ``.reserve(`` call in the slow twin.
FAST_PATH_PAIRS = [
    ("Crossbar.traverse_fast", "Crossbar.traverse", "inline", {}),
    # SimVec batched traversal: per-item arithmetic identical to
    # traverse_fast, one frame per batch.  The loop shape defeats the
    # inline template matcher, so equivalence is delegated to the
    # differential confirmer and the fingerprint-identity tests.
    ("Crossbar.traverse_run_fast", "Crossbar.traverse", "delegated", {}),
]


class Crossbar:
    """Timing model of one ``num_in x num_out`` crossbar."""

    def __init__(
        self,
        name: str,
        num_in: int,
        num_out: int,
        cycles_per_flit: float,
        latency: float,
        link_mm: float = 1.0,
    ):
        if num_in <= 0 or num_out <= 0:
            raise ValueError(f"crossbar {name!r} needs positive port counts")
        if cycles_per_flit <= 0:
            raise ValueError(f"crossbar {name!r} needs positive per-flit service time")
        self.name = name
        self.num_in = num_in
        self.num_out = num_out
        self.cycles_per_flit = float(cycles_per_flit)
        self.latency = float(latency)
        self.link_mm = link_mm
        # Serialization happens on both the input link and the output link;
        # the pipeline latency is charged once, on the output side.
        self.in_ports = ServerGroup(f"{name}.in", num_in, cycles_per_flit, 0.0)
        self.out_ports = ServerGroup(f"{name}.out", num_out, cycles_per_flit, latency)
        # Direct server lists for the hot path (skip ServerGroup indexing).
        self._in = self.in_ports.servers
        self._out = self.out_ports.servers
        self.flit_hops = 0
        # SimSanitizer hook: when a ResourceLedger is attached, every port
        # reservation is validated (finite/ordered times, positive flit
        # counts, no runaway holds) the moment it is made.
        self._ledger = None

    def attach_sanitizer(self, ledger) -> None:
        """Attach a :class:`repro.analysis.sanitizer.ResourceLedger`."""
        self._ledger = ledger

    def traverse(self, now: float, in_port: int, out_port: int, flits: int) -> float:
        """Send ``flits`` flits from ``in_port`` to ``out_port``.

        Returns the completion time (head of packet out + serialization +
        pipeline latency).
        """
        self.flit_hops += flits
        t_in = self._in[in_port].reserve(now, flits)
        t_out = self._out[out_port].reserve(t_in, flits)
        if self._ledger is not None:
            self._ledger.check_reservation(
                f"{self.name}[{in_port}->{out_port}]", now, flits, t_out
            )
        return t_out

    def traverse_fast(self, now: float, in_port: int, out_port: int, flits: int) -> float:
        """Uninstrumented :meth:`traverse`: both port reservations inlined
        (see :meth:`Server.reserve_fast <repro.sim.resources.Server.reserve_fast>`),
        no ledger validation.  Arithmetic must stay in lockstep with
        ``traverse`` — the fingerprint-identity tests guard the pairing.
        Selected at wiring time (``NoCTopology.make_fast_routes``) only
        when no sanitizer is attached.
        """
        self.flit_hops += flits
        p = self._in[in_port]
        start = now if now > p.next_free else p.next_free
        occupancy = p.service * flits
        p.next_free = start + occupancy
        p.busy_cycles += occupancy
        p.num_served += 1
        t_in = start + occupancy + p.latency
        p = self._out[out_port]
        start = t_in if t_in > p.next_free else p.next_free
        occupancy = p.service * flits
        p.next_free = start + occupancy
        p.busy_cycles += occupancy
        p.num_served += 1
        return start + occupancy + p.latency

    def traverse_run_fast(self, times, in_id, out_id, flits, out) -> None:
        """Batched :meth:`traverse_fast` over parallel sequences.

        Sends one ``flits``-flit packet from ``in_id[i]`` to ``out_id[i]``
        arriving at ``times[i]`` for every ``i``, in order, appending each
        completion time to ``out``.  Per item the arithmetic is exactly
        :meth:`traverse_fast`; only the call overhead is amortized to one
        frame per batch (SimVec).  Order matters and is preserved — port
        ``next_free`` chains evolve identically to sequential calls.
        """
        inp = self._in
        outp = self._out
        self.flit_hops += flits * len(times)
        append = out.append
        for i, now in enumerate(times):
            p = inp[in_id[i]]
            start = now if now > p.next_free else p.next_free
            occupancy = p.service * flits
            p.next_free = start + occupancy
            p.busy_cycles += occupancy
            p.num_served += 1
            t_in = start + occupancy + p.latency
            p = outp[out_id[i]]
            start = t_in if t_in > p.next_free else p.next_free
            occupancy = p.service * flits
            p.next_free = start + occupancy
            p.busy_cycles += occupancy
            p.num_served += 1
            append(start + occupancy + p.latency)

    def inject_out(self, now: float, out_port: int, flits: int) -> float:
        """Reserve only the output port (for direct-link degenerate cases)."""
        self.flit_hops += flits
        t_out = self.out_ports[out_port].reserve(now, flits)
        if self._ledger is not None:
            self._ledger.check_reservation(f"{self.name}[->{out_port}]", now, flits, t_out)
        return t_out

    def max_out_utilization(self, total_cycles: float) -> float:
        """Max output-port (reply-link) utilization — the Fig. 2 NoC metric."""
        return self.out_ports.max_utilization(total_cycles)

    def max_in_utilization(self, total_cycles: float) -> float:
        return self.in_ports.max_utilization(total_cycles)

    def reset(self) -> None:
        self.in_ports.reset()
        self.out_ports.reset()
        self.flit_hops = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Crossbar({self.name!r}, {self.num_in}x{self.num_out})"
