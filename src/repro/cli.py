"""Command-line interface.

The subcommands cover the library's main entry points::

    repro simulate T-AlexNet --design Sh40+C10+Boost --scale 0.5
    repro simulate T-AlexNet --sanitize        # run under the SimSanitizer
    repro simulate T-AlexNet --watchdog        # stall watchdog + wait graphs
    repro profile --app T-AlexNet --design Sh40  # per-handler event profile
    repro characterize --scale 1.0
    repro figures fig14 fig16
    repro figures --all --jobs 8 --cache-dir ~/.cache/repro  # parallel + persistent
    repro sweep P-2MM --scale 0.5 --jobs 4
    repro sweep P-2MM --jobs 4 --no-fleet      # per-call pool (REPRO_FLEET=0)
    repro lint src/repro                       # SimLint static analysis
    repro race --static src/repro              # SimRace ordering-hazard scan
    repro race --confirm --app P-2MM -k 5      # SimRace shadow-shuffle replay
    repro flow src/repro                       # SimFlow liveness analysis
    repro purity src/repro                     # SimPure key-soundness scan
    repro purity --confirm --scale 0.1         # mutate-and-replay confirmation
    repro shard src/repro                      # SimShard distribution safety
    repro shard --confirm --scale 0.1          # serial/fork/spawn replay diff
    repro heat src/repro                       # SimHeat twin-path/hot-path scan
    repro heat --confirm --scale 0.1           # force-fast vs force-slow replay
    repro analyze src/repro                    # the full hexapod, one table
    repro analyze --json src/repro             # machine-readable CI artifact

Installed as the ``repro`` console script; also runnable as
``python -m repro.cli``.  Design names accept the paper's labels
(``Baseline``, ``Pr40``, ``Sh40``, ``Sh40+C10``, ``Sh40+C10+Boost``,
``CDXBar``...) or constructor-style strings like ``clustered:40:10:2``.
``run`` is an alias for ``simulate``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.analysis.tables import format_table
from repro.core.designs import DesignSpec
from repro.sim.config import SimConfig
from repro.sim.system import simulate
from repro.workloads.suite import APP_NAMES, get_app

#: Version of the ``repro analyze --json`` report schema.  Bump when the
#: document's shape changes so downstream consumers (the future SimServe
#: API, CI artifact differs) can dispatch on it.  v2: the pentapod grew
#: into a hexapod — a ``simheat`` tool section joined the report.
ANALYZE_SCHEMA_VERSION = 2

_NAMED_DESIGNS = {
    "baseline": DesignSpec.baseline(),
    "pr80": DesignSpec.private(80),
    "pr40": DesignSpec.private(40),
    "pr20": DesignSpec.private(20),
    "pr10": DesignSpec.private(10),
    "sh40": DesignSpec.shared(40),
    "sh40+c5": DesignSpec.clustered(40, 5),
    "sh40+c10": DesignSpec.clustered(40, 10),
    "sh40+c20": DesignSpec.clustered(40, 20),
    "sh40+c10+boost": DesignSpec.clustered(40, 10, boost=2.0),
    "cdxbar": DesignSpec.cdxbar(),
    "cdxbar+2xnoc": DesignSpec.cdxbar(2.0, 2.0),
    "singlel1": DesignSpec.single_l1(),
}


def parse_design(text: str) -> DesignSpec:
    """Resolve a design from a paper label or a constructor string."""
    key = text.strip().lower()
    if key in _NAMED_DESIGNS:
        return _NAMED_DESIGNS[key]
    parts = key.split(":")
    kind, args = parts[0], parts[1:]
    try:
        if kind == "private":
            return DesignSpec.private(int(args[0]))
        if kind == "shared":
            return DesignSpec.shared(int(args[0]))
        if kind == "clustered":
            boost = float(args[2]) if len(args) > 2 else 1.0
            return DesignSpec.clustered(int(args[0]), int(args[1]), boost=boost)
    except (IndexError, ValueError) as exc:
        raise argparse.ArgumentTypeError(f"bad design spec {text!r}: {exc}") from exc
    raise argparse.ArgumentTypeError(
        f"unknown design {text!r}; named designs: {sorted(_NAMED_DESIGNS)} "
        "or private:Y / shared:Y / clustered:Y:Z[:boost]"
    )


def _cmd_simulate(args) -> int:
    from repro.analysis.analytical import validate_against

    cfg = SimConfig(
        scale=args.scale, cta_scheduler=args.scheduler, sanitize=args.sanitize,
        watchdog=args.watchdog,
    )
    app = get_app(args.app)

    def row(spec, res, base):
        bound = validate_against(res, spec, app, gpu=cfg.gpu)
        return [
            spec.label, f"{res.ipc:.2f}",
            f"{res.speedup_vs(base):.2f}x", f"{res.l1_miss_rate:.1%}",
            f"{res.replication_ratio:.1%}", f"{res.load_rtt_mean:.0f}",
            bound["binding"],
        ]

    base_spec = DesignSpec.baseline()
    base = simulate(app, base_spec, cfg)
    rows = [row(base_spec, base, base)]
    for spec in args.design:
        rows.append(row(spec, simulate(app, spec, cfg), base))
    print(format_table(
        ["design", "IPC", "speedup", "miss", "replication", "RTT", "bottleneck"],
        rows, title=f"{app.name} @ scale {args.scale:g}"))
    return 0


def _cmd_profile(args) -> int:
    import json

    from repro.sim.profiler import profile_simulation

    cfg = SimConfig(scale=args.scale)
    app = get_app(args.app)
    res, prof = profile_simulation(app, args.design, cfg,
                                   trace_alloc=args.alloc)
    if args.json:
        # Deterministic shape (handlers sorted by name, not by timing) so
        # CI can diff the structure across runs; the timing numbers
        # themselves are wall-clock and vary.
        rows = sorted(prof.rows(), key=lambda r: r.handler)
        doc = {
            "app": app.name,
            "design": args.design.label,
            "scale": args.scale,
            "alloc_traced": bool(args.alloc),
            "total_events": prof.total_events,
            "total_self_s": prof.total_self_time,
            "wall_time_s": res.wall_time_s,
            "events_per_s": res.events_per_s,
            "handlers": [
                {
                    "handler": r.handler,
                    "events": r.events,
                    "self_s": r.self_s,
                    "pct": r.pct,
                    "us_per_event": r.us_per_event,
                    "alloc_b_per_event": r.alloc_b_per_event,
                }
                for r in rows
            ],
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    print(f"{app.name} @ {args.design.label}, scale {args.scale:g}")
    print(prof.render(top=args.top))
    print(
        f"sim: ipc={res.ipc:.2f} cycles={res.cycles:.0f} "
        f"events={prof.total_events} wall={res.wall_time_s:.3f}s "
        f"({res.events_per_s:,.0f} events/s end-to-end)"
    )
    return 0


def _cmd_characterize(args) -> int:
    from repro.analysis.classify import classify
    from repro.workloads.suite import REPLICATION_SENSITIVE, all_apps

    cfg = SimConfig(scale=args.scale)
    rows = []
    for prof in all_apps():
        base = simulate(prof, DesignSpec.baseline(), cfg)
        big = simulate(
            prof, DesignSpec.baseline(l1_size_mult=16.0),
            SimConfig(scale=args.scale, l1_latency_override=cfg.gpu.l1_latency),
        )
        row = classify(base, big)
        rows.append([
            row.app, f"{row.replication_ratio:.1%}", f"{row.l1_miss_rate:.1%}",
            f"{row.speedup_16x:.2f}x",
            "sensitive" if row.replication_sensitive else "-",
            "sensitive" if prof.name in REPLICATION_SENSITIVE else "-",
        ])
    rows.sort(key=lambda r: float(r[1].rstrip("%")))
    print(format_table(
        ["app", "replication", "miss", "16x", "measured", "paper"], rows))
    return 0


def _make_runner(args, scale: float):
    """Build a Runner from the shared --jobs/--cache-dir/--no-cache flags."""
    from repro.experiments.base import Runner

    cache = False if args.no_cache else (args.cache_dir or None)
    fleet = False if getattr(args, "no_fleet", False) else None
    return Runner(SimConfig(scale=scale), jobs=args.jobs, cache=cache,
                  fleet=fleet)


def _add_sweep_flags(parser) -> None:
    """The parallel-sweep/persistent-cache flags shared by grid commands."""
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="simulate cache misses over N worker processes "
             "(default: REPRO_JOBS, else serial)")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent result-cache directory "
             "(default: REPRO_CACHE_DIR, else no disk cache)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent result cache even if REPRO_CACHE_DIR is set")
    parser.add_argument(
        "--no-fleet", action="store_true",
        help="use a fresh worker pool per sweep instead of the persistent "
             "warm fleet (equivalent to REPRO_FLEET=0)")


def _cmd_figures(args) -> int:
    from repro.experiments.registry import EXPERIMENTS, run_experiment

    if args.list:
        print("\n".join(EXPERIMENTS))
        return 0
    ids = list(EXPERIMENTS) if args.all else args.ids
    if not ids:
        print("no experiments given (use --all or --list)", file=sys.stderr)
        return 2
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        return 2
    runner = _make_runner(args, args.scale)
    for exp_id in ids:
        # Wall-clock is fine here: it reports elapsed real time to the user
        # and never feeds the simulation.
        t0 = time.time()  # simlint: disable=SL101
        print(run_experiment(exp_id, runner).render())
        print(f"({time.time() - t0:.1f}s)\n")  # simlint: disable=SL101
    # Observability goes to stderr: stdout stays a deterministic result
    # stream (cold and cache-warm reruns must diff clean).
    summary = runner.throughput_summary()
    if summary:
        print(summary, file=sys.stderr)
    return 0


def _cmd_sweep(args) -> int:
    from repro.sim.validation import GridValidationError, validate_grid

    runner = _make_runner(args, args.scale)
    app = get_app(args.app)
    specs = [DesignSpec.baseline()]
    specs += [DesignSpec.private(y) for y in (80, 40, 20, 10)]
    specs += [DesignSpec.clustered(40, z) for z in (1, 5, 10, 20)]
    specs.append(DesignSpec.clustered(40, 10, boost=2.0))
    points = [(app, spec) for spec in specs]
    # Strict pre-flight (duplicates are grid-construction bugs here, not
    # intentional collapses) before anything reaches the process pool.
    try:
        validate_grid(runner.resolve_points(points))
    except GridValidationError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    results = runner.run_many(points)
    base = results[0]
    rows = [
        [spec.label, f"{res.speedup_vs(base):.2f}x", f"{res.l1_miss_rate:.1%}"]
        for spec, res in zip(specs[1:], results[1:])
    ]
    print(format_table(["design", "speedup", "miss"], rows,
                       title=f"Design-space sweep: {app.name}"))
    # Observability goes to stderr: stdout stays a deterministic result
    # stream (cold and cache-warm reruns must diff clean).
    summary = runner.throughput_summary()
    if summary:
        print(summary, file=sys.stderr)
    return 0


def _cmd_lint(args) -> int:
    import os

    from repro.analysis.simlint import Severity, rule_table, run_lint

    if args.list_rules:
        for rule_id, severity, title in rule_table():
            print(f"{rule_id}  {severity:<7}  {title}")
        return 0
    if args.select:
        known = {rule_id for rule_id, _, _ in rule_table()}
        unknown = [r for r in args.select if r not in known]
        if unknown:
            print(
                f"simlint: unknown rule(s) {', '.join(unknown)} "
                f"(see `repro lint --list-rules`)",
                file=sys.stderr,
            )
            return 2
    paths = args.paths
    if not paths:
        # Default to linting the installed package sources themselves.
        paths = [os.path.dirname(os.path.abspath(__file__))]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"simlint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    findings = run_lint(paths, select=args.select or None)
    for f in findings:
        print(f.format())
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    if findings:
        print(
            f"simlint: {errors} error(s), {warnings} warning(s)", file=sys.stderr
        )
    if errors or (args.strict and findings):
        return 1
    return 0


def _cmd_race(args) -> int:
    import os

    from repro.analysis.simlint import Severity
    from repro.analysis.simrace import confirm_races, race_rule_table, run_race

    if args.list_rules:
        for rule_id, severity, title in race_rule_table():
            print(f"{rule_id}  {severity:<7}  {title}")
        return 0
    if args.select:
        known = {rule_id for rule_id, _, _ in race_rule_table()}
        unknown = [r for r in args.select if r not in known]
        if unknown:
            print(
                f"simrace: unknown rule(s) {', '.join(unknown)} "
                f"(see `repro race --list-rules`)",
                file=sys.stderr,
            )
            return 2
    run_static = args.static or not args.confirm
    exit_code = 0
    findings = []
    if run_static:
        paths = args.paths
        if not paths:
            paths = [os.path.dirname(os.path.abspath(__file__))]
        missing = [p for p in paths if not os.path.exists(p)]
        if missing:
            print(f"simrace: no such path: {', '.join(missing)}", file=sys.stderr)
            return 2
        findings = run_race(paths, select=args.select or None)
        for f in findings:
            print(f.format())
        errors = sum(1 for f in findings if f.severity is Severity.ERROR)
        warnings = len(findings) - errors
        if findings:
            print(
                f"simrace: {errors} error(s), {warnings} warning(s)",
                file=sys.stderr,
            )
        if errors or (args.strict and findings):
            exit_code = 1
    if args.confirm:
        app = get_app(args.app)
        cfg = SimConfig(scale=args.scale)
        report = confirm_races(app, args.design, cfg, k=args.k, findings=findings)
        print(report.render(findings))
        if not report.bit_identical:
            exit_code = 1
    return exit_code


def _cmd_flow(args) -> int:
    import os

    from repro.analysis.simflow import flow_rule_table, run_flow
    from repro.analysis.simlint import Severity

    if args.list_rules:
        for rule_id, severity, title in flow_rule_table():
            print(f"{rule_id}  {severity:<7}  {title}")
        return 0
    if args.select:
        known = {rule_id for rule_id, _, _ in flow_rule_table()}
        unknown = [r for r in args.select if r not in known]
        if unknown:
            print(
                f"simflow: unknown rule(s) {', '.join(unknown)} "
                f"(see `repro flow --list-rules`)",
                file=sys.stderr,
            )
            return 2
    paths = args.paths
    if not paths:
        paths = [os.path.dirname(os.path.abspath(__file__))]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"simflow: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    findings = run_flow(paths, select=args.select or None)
    for f in findings:
        print(f.format())
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    if findings:
        print(
            f"simflow: {errors} error(s), {warnings} warning(s)", file=sys.stderr
        )
    if errors or (args.strict and findings):
        return 1
    return 0


def _cmd_purity(args) -> int:
    import os

    from repro.analysis.simlint import Severity
    from repro.analysis.simpure import (
        DEFAULT_CONFIRM_GRID,
        confirm_purity,
        purity_rule_table,
        run_purity,
    )

    if args.list_rules:
        for rule_id, severity, title in purity_rule_table():
            print(f"{rule_id}  {severity:<7}  {title}")
        return 0
    if args.select:
        known = {rule_id for rule_id, _, _ in purity_rule_table()}
        unknown = [r for r in args.select if r not in known]
        if unknown:
            print(
                f"simpure: unknown rule(s) {', '.join(unknown)} "
                f"(see `repro purity --list-rules`)",
                file=sys.stderr,
            )
            return 2
    run_static = args.static or not args.confirm
    exit_code = 0
    if run_static:
        paths = args.paths
        if not paths:
            paths = [os.path.dirname(os.path.abspath(__file__))]
        missing = [p for p in paths if not os.path.exists(p)]
        if missing:
            print(f"simpure: no such path: {', '.join(missing)}", file=sys.stderr)
            return 2
        findings = run_purity(paths, select=args.select or None)
        for f in findings:
            print(f.format())
        errors = sum(1 for f in findings if f.severity is Severity.ERROR)
        warnings = len(findings) - errors
        if findings:
            print(
                f"simpure: {errors} error(s), {warnings} warning(s)",
                file=sys.stderr,
            )
        if errors or (args.strict and findings):
            exit_code = 1
    if args.confirm:
        grid = list(DEFAULT_CONFIRM_GRID)
        if args.grid:
            grid = []
            for entry in args.grid:
                app_name, _, design = entry.partition("/")
                if not design:
                    print(
                        f"simpure: bad --grid entry {entry!r} "
                        "(expected APP/DESIGN, e.g. P-2MM/Pr40)",
                        file=sys.stderr,
                    )
                    return 2
                parse_design(design)  # fail fast on unknown designs
                grid.append((app_name, design))
        report = confirm_purity(grid=grid, scale=args.scale)
        print(report.render())
        if not report.ok:
            exit_code = 1
    return exit_code


def _cmd_shard(args) -> int:
    import os

    from repro.analysis.simlint import Severity
    from repro.analysis.simshard import (
        DEFAULT_CONFIRM_GRID,
        confirm_shard,
        run_shard,
        shard_rule_table,
    )

    if args.list_rules:
        for rule_id, severity, title in shard_rule_table():
            print(f"{rule_id}  {severity:<7}  {title}")
        return 0
    if args.select:
        known = {rule_id for rule_id, _, _ in shard_rule_table()}
        unknown = [r for r in args.select if r not in known]
        if unknown:
            print(
                f"simshard: unknown rule(s) {', '.join(unknown)} "
                f"(see `repro shard --list-rules`)",
                file=sys.stderr,
            )
            return 2
    run_static = args.static or not args.confirm
    exit_code = 0
    findings = []
    if run_static:
        paths = args.paths
        if not paths:
            paths = [os.path.dirname(os.path.abspath(__file__))]
        missing = [p for p in paths if not os.path.exists(p)]
        if missing:
            print(f"simshard: no such path: {', '.join(missing)}", file=sys.stderr)
            return 2
        findings = run_shard(paths, select=args.select or None)
        for f in findings:
            print(f.format())
        errors = sum(1 for f in findings if f.severity is Severity.ERROR)
        warnings = len(findings) - errors
        if findings:
            print(
                f"simshard: {errors} error(s), {warnings} warning(s)",
                file=sys.stderr,
            )
        if errors or (args.strict and findings):
            exit_code = 1
    if args.confirm:
        grid = list(DEFAULT_CONFIRM_GRID)
        if args.grid:
            grid = []
            for entry in args.grid:
                app_name, _, design = entry.partition("/")
                if not design:
                    print(
                        f"simshard: bad --grid entry {entry!r} "
                        "(expected APP/DESIGN, e.g. P-2MM/Pr40)",
                        file=sys.stderr,
                    )
                    return 2
                parse_design(design)  # fail fast on unknown designs
                grid.append((app_name, design))
        report = confirm_shard(grid=grid, scale=args.scale, jobs=args.jobs)
        print(report.render(findings))
        if not report.ok:
            exit_code = 1
    return exit_code


def _cmd_heat(args) -> int:
    import os

    from repro.analysis.simheat import (
        DEFAULT_CONFIRM_GRID,
        confirm_heat,
        heat_rule_table,
        run_heat,
    )
    from repro.analysis.simlint import Severity

    if args.list_rules:
        for rule_id, severity, title in heat_rule_table():
            print(f"{rule_id}  {severity:<7}  {title}")
        return 0
    if args.select:
        known = {rule_id for rule_id, _, _ in heat_rule_table()}
        unknown = [r for r in args.select if r not in known]
        if unknown:
            print(
                f"simheat: unknown rule(s) {', '.join(unknown)} "
                f"(see `repro heat --list-rules`)",
                file=sys.stderr,
            )
            return 2
    run_static = args.static or not args.confirm
    exit_code = 0
    findings = []
    if run_static:
        paths = args.paths
        if not paths:
            paths = [os.path.dirname(os.path.abspath(__file__))]
        missing = [p for p in paths if not os.path.exists(p)]
        if missing:
            print(f"simheat: no such path: {', '.join(missing)}", file=sys.stderr)
            return 2
        findings = run_heat(paths, select=args.select or None)
        for f in findings:
            print(f.format())
        errors = sum(1 for f in findings if f.severity is Severity.ERROR)
        warnings = len(findings) - errors
        if findings:
            print(
                f"simheat: {errors} error(s), {warnings} warning(s)",
                file=sys.stderr,
            )
        if errors or (args.strict and findings):
            exit_code = 1
    if args.confirm:
        grid = list(DEFAULT_CONFIRM_GRID)
        if args.grid:
            grid = []
            for entry in args.grid:
                app_name, _, design = entry.partition("/")
                if not design:
                    print(
                        f"simheat: bad --grid entry {entry!r} "
                        "(expected APP/DESIGN, e.g. P-2MM/Sh40+C10)",
                        file=sys.stderr,
                    )
                    return 2
                parse_design(design)  # fail fast on unknown designs
                grid.append((app_name, design))
        report = confirm_heat(grid=grid, scale=args.scale,
                              trace_alloc=not args.no_alloc)
        print(report.render(findings))
        if not report.ok:
            exit_code = 1
    return exit_code


def _cmd_analyze(args) -> int:
    import json
    import os

    from repro.analysis.simflow import run_flow
    from repro.analysis.simheat import run_heat
    from repro.analysis.simlint import Severity, run_lint
    from repro.analysis.simpure import run_purity
    from repro.analysis.simrace import run_race
    from repro.analysis.simshard import run_shard

    paths = args.paths
    if not paths:
        paths = [os.path.dirname(os.path.abspath(__file__))]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"analyze: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    tools = (
        ("simlint", "determinism/resource hygiene", run_lint),
        ("simrace", "same-cycle ordering hazards", run_race),
        ("simflow", "resource-flow liveness", run_flow),
        ("simpure", "cache-key & fingerprint soundness", run_purity),
        ("simshard", "distribution safety", run_shard),
        ("simheat", "twin-path & hot-path hygiene", run_heat),
    )
    rows = []
    report = []
    exit_code = 0
    for name, what, runner in tools:
        findings = runner(paths)
        if not args.json:
            for f in findings:
                print(f.format())
        errors = sum(1 for f in findings if f.severity is Severity.ERROR)
        warnings = len(findings) - errors
        failed = bool(errors or (args.strict and findings))
        if failed:
            exit_code = 1
        rows.append([
            name, what, str(errors), str(warnings),
            "FAIL" if failed else "ok",
        ])
        report.append({
            "tool": name,
            "checks": what,
            "errors": errors,
            "warnings": warnings,
            "status": "fail" if failed else "ok",
            "findings": [
                {
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "rule": f.rule_id,
                    "severity": f.severity.value,
                    "message": f.message,
                }
                for f in findings
            ],
        })
    if args.json:
        # One deterministic JSON document on stdout — a CI artifact that
        # machines diff across runs (findings are already sorted by
        # path/line/col/rule within each tool).
        print(json.dumps(
            {
                "schema_version": ANALYZE_SCHEMA_VERSION,
                "paths": list(paths),
                "strict": bool(args.strict),
                "tools": report,
                "exit_code": exit_code,
            },
            indent=2, sort_keys=True,
        ))
    else:
        print(format_table(
            ["tool", "checks", "errors", "warnings", "status"], rows,
            title=f"repro analyze: {' '.join(paths)}"))
    return exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", aliases=["run"],
                       help="run one app on one or more designs")
    p.add_argument("app", choices=APP_NAMES)
    p.add_argument("--design", type=parse_design, action="append",
                   default=None, help="design label or constructor string")
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--scheduler", choices=("round_robin", "distributed"),
                   default="round_robin")
    p.add_argument("--sanitize", action="store_true",
                   help="run under the SimSanitizer resource ledger "
                        "(leak/double-free/lifecycle checking)")
    p.add_argument("--watchdog", action="store_true",
                   help="run under the stall watchdog: a wedged/livelocked "
                        "run raises SimStallError with a resource wait-graph "
                        "dump instead of hanging")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser(
        "profile",
        help="per-handler event profile of one simulation (SimTurbo observability)",
    )
    p.add_argument("--app", choices=APP_NAMES, required=True)
    p.add_argument("--design", type=parse_design, default=DesignSpec.shared(40),
                   help="design label or constructor string (default Sh40)")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--top", type=int, default=0,
                   help="limit the table to the N hottest handlers (0 = all)")
    p.add_argument("--json", action="store_true",
                   help="emit one deterministic per-handler JSON document on "
                        "stdout (handlers sorted by name) instead of the table")
    p.add_argument("--alloc", action="store_true",
                   help="also attribute net heap allocation to each handler "
                        "via tracemalloc (substantial slowdown; timing "
                        "numbers are not comparable to plain profiles)")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("characterize", help="Figure 1 classification of the suite")
    p.add_argument("--scale", type=float, default=1.0)
    p.set_defaults(func=_cmd_characterize)

    p = sub.add_parser("figures", help="regenerate paper tables/figures")
    p.add_argument("ids", nargs="*")
    p.add_argument("--all", action="store_true")
    p.add_argument("--list", action="store_true")
    p.add_argument("--scale", type=float, default=1.0)
    _add_sweep_flags(p)
    p.set_defaults(func=_cmd_figures)

    p = sub.add_parser("sweep", help="aggregation/clustering sweep on one app")
    p.add_argument("app", choices=APP_NAMES)
    p.add_argument("--scale", type=float, default=0.5)
    _add_sweep_flags(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("lint", help="SimLint: simulator-specific static analysis")
    p.add_argument("paths", nargs="*",
                   help="files/directories to lint (default: the repro package)")
    p.add_argument("--select", action="append", metavar="RULE",
                   help="only run the given rule ID (repeatable)")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero on warnings too, not only errors")
    p.add_argument("--list-rules", action="store_true",
                   help="list the registered rules and exit")
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "race",
        help="SimRace: same-cycle ordering-hazard detection "
             "(static AST pass and/or shadow-shuffle replay)",
    )
    p.add_argument("paths", nargs="*",
                   help="files/directories for --static (default: the repro package)")
    p.add_argument("--static", action="store_true",
                   help="run the static co-scheduling conflict pass "
                        "(default when --confirm is not given)")
    p.add_argument("--confirm", action="store_true",
                   help="replay one workload under K same-cycle permutations "
                        "and diff bit-exact results against the FIFO baseline")
    p.add_argument("--app", choices=APP_NAMES, default="P-2MM",
                   help="application for --confirm (default: P-2MM)")
    p.add_argument("--design", type=parse_design, default=DesignSpec.private(40),
                   help="design for --confirm (default: Pr40)")
    p.add_argument("--scale", type=float, default=0.25,
                   help="workload scale for --confirm")
    p.add_argument("-k", type=int, default=5,
                   help="number of shuffle permutations for --confirm")
    p.add_argument("--select", action="append", metavar="RULE",
                   help="only run the given SR rule ID (repeatable)")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero on warnings too, not only errors")
    p.add_argument("--list-rules", action="store_true",
                   help="list the registered SimRace rules and exit")
    p.set_defaults(func=_cmd_race)

    p = sub.add_parser(
        "flow",
        help="SimFlow: static resource-flow liveness analysis "
             "(leaks, stray releases, acquire-order cycles)",
    )
    p.add_argument("paths", nargs="*",
                   help="files/directories to analyze (default: the repro package)")
    p.add_argument("--select", action="append", metavar="RULE",
                   help="only run the given SF rule ID (repeatable)")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero on warnings too, not only errors")
    p.add_argument("--list-rules", action="store_true",
                   help="list the registered SimFlow rules and exit")
    p.set_defaults(func=_cmd_flow)

    p = sub.add_parser(
        "purity",
        help="SimPure: cache-key & fingerprint soundness "
             "(static AST pass and/or mutate-and-replay confirmation)",
    )
    p.add_argument("paths", nargs="*",
                   help="files/directories for --static (default: the repro package)")
    p.add_argument("--static", action="store_true",
                   help="run the static key-soundness pass "
                        "(default when --confirm is not given)")
    p.add_argument("--confirm", action="store_true",
                   help="mutate every keyed field (key must change) and every "
                        "excluded input (fingerprint must stay bit-identical) "
                        "over a small app/design grid")
    p.add_argument("--grid", action="append", metavar="APP/DESIGN",
                   help="grid point for --confirm, e.g. P-2MM/Pr40 "
                        "(repeatable; default: P-2MM/Pr40, T-AlexNet/Sh40+C10, "
                        "C-BLK/Baseline)")
    p.add_argument("--scale", type=float, default=0.1,
                   help="workload scale for --confirm")
    p.add_argument("--select", action="append", metavar="RULE",
                   help="only run the given SP rule ID (repeatable)")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero on warnings too, not only errors")
    p.add_argument("--list-rules", action="store_true",
                   help="list the registered SimPure rules and exit")
    p.set_defaults(func=_cmd_purity)

    p = sub.add_parser(
        "shard",
        help="SimShard: distribution safety of the sweep layer "
             "(static AST pass and/or serial/fork/spawn replay confirmation)",
    )
    p.add_argument("paths", nargs="*",
                   help="files/directories for --static (default: the repro package)")
    p.add_argument("--static", action="store_true",
                   help="run the static distribution-safety pass "
                        "(default when --confirm is not given)")
    p.add_argument("--confirm", action="store_true",
                   help="pickle-roundtrip every grid point (cache key must "
                        "survive) and replay a small grid serial vs fork-pool "
                        "vs spawn-pool, requiring bit-identical fingerprints")
    p.add_argument("--grid", action="append", metavar="APP/DESIGN",
                   help="grid point for --confirm, e.g. P-2MM/Pr40 "
                        "(repeatable; default: P-2MM/Pr40, T-AlexNet/Sh40+C10, "
                        "C-BLK/Baseline, C-NN/Sh40)")
    p.add_argument("--scale", type=float, default=0.1,
                   help="workload scale for --confirm")
    p.add_argument("--jobs", type=int, default=2,
                   help="pool width for the --confirm replays (default 2)")
    p.add_argument("--select", action="append", metavar="RULE",
                   help="only run the given SD rule ID (repeatable)")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero on warnings too, not only errors")
    p.add_argument("--list-rules", action="store_true",
                   help="list the registered SimShard rules and exit")
    p.set_defaults(func=_cmd_shard)

    p = sub.add_parser(
        "heat",
        help="SimHeat: twin-path drift & hot-path performance hygiene "
             "(static AST pass and/or force-fast vs force-slow replay "
             "confirmation)",
    )
    p.add_argument("paths", nargs="*",
                   help="files/directories for --static (default: the repro package)")
    p.add_argument("--static", action="store_true",
                   help="run the static twin-path drift / hot-path pass "
                        "(default when --confirm is not given)")
    p.add_argument("--confirm", action="store_true",
                   help="replay a small grid with the hot path forced on and "
                        "forced off, requiring bit-identical fingerprints, "
                        "and alloc-profile the hot handlers")
    p.add_argument("--grid", action="append", metavar="APP/DESIGN",
                   help="grid point for --confirm, e.g. P-2MM/Sh40+C10 "
                        "(repeatable; default: T-AlexNet/Sh40, "
                        "P-2MM/Sh40+C10, C-SP/Pr40, C-BLK/Baseline)")
    p.add_argument("--scale", type=float, default=0.1,
                   help="workload scale for --confirm")
    p.add_argument("--no-alloc", action="store_true",
                   help="skip the tracemalloc allocation profile in --confirm "
                        "(twin replays only; much faster)")
    p.add_argument("--select", action="append", metavar="RULE",
                   help="only run the given SH rule ID (repeatable)")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero on warnings too, not only errors")
    p.add_argument("--list-rules", action="store_true",
                   help="list the registered SimHeat rules and exit")
    p.set_defaults(func=_cmd_heat)

    p = sub.add_parser(
        "analyze",
        help="run the full static-analysis hexapod (lint + race + flow "
             "+ purity + shard + heat) with a unified summary table and "
             "combined exit code",
    )
    p.add_argument("paths", nargs="*",
                   help="files/directories to analyze (default: the repro package)")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero on warnings too, not only errors")
    p.add_argument("--json", action="store_true",
                   help="emit one machine-readable JSON document on stdout "
                        "(per-tool findings + combined exit code) instead of "
                        "the human table — for CI artifacting")
    p.set_defaults(func=_cmd_analyze)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "command", None) in ("simulate", "run") and args.design is None:
        args.design = [DesignSpec.clustered(40, 10, boost=2.0)]
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
