"""Shared experiment infrastructure.

:class:`Runner` is a memoizing front-end to :func:`repro.sim.system.simulate`
with three result layers:

1. an in-process dict keyed by the frozen (profile, spec, config) triple,
2. an optional persistent on-disk cache
   (:class:`repro.sim.store.DiskResultCache`), shared across processes and
   sessions, content-addressed by :func:`repro.sim.store.sim_cache_key`,
3. the simulator itself.

Experiments request ``runner.run(app_name, spec, ...)`` one point at a
time, or pre-submit a whole (application x design) grid with
:meth:`Runner.run_many`, which fans cache misses out over a process pool
(``jobs``/``REPRO_JOBS``) and returns results in submission order.  Both
paths are bit-deterministic: a parallel or cache-served result has the
same :meth:`~repro.sim.results.SimResult.fingerprint` as a serial cold
run.

The workload scale can be set globally via the ``REPRO_SCALE`` environment
variable (1.0 = the calibrated benchmark scale; tests use much smaller
scales and only assert coarse invariants).

:class:`ExperimentReport` is the uniform result: named rows, a summary of
headline numbers, the paper's reported values, and a text rendering.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.tables import format_dict_table
from repro.core.designs import DesignSpec
from repro.sim.config import GPUConfig, SimConfig
from repro.sim.results import SimResult
from repro.sim.store import DiskResultCache, cache_from_env, sim_cache_key
from repro.sim.system import simulate
from repro.sim.validation import validate_grid
from repro.workloads.profile import AppProfile
from repro.workloads.suite import get_app

#: The paper's four proposed designs (Section VIII) in presentation order.
PROPOSED_DESIGNS: Sequence[DesignSpec] = (
    DesignSpec.private(40),
    DesignSpec.shared(40),
    DesignSpec.clustered(40, 10),
    DesignSpec.clustered(40, 10, boost=2.0),
)

BASELINE = DesignSpec.baseline()

#: One sweep point for :meth:`Runner.run_many`: ``(app, spec)`` or
#: ``(app, spec, run_kwargs)`` where ``run_kwargs`` are the keyword
#: arguments :meth:`Runner.run` accepts (scheduler, overrides, ...).
SweepPoint = Union[
    Tuple[object, DesignSpec],
    Tuple[object, DesignSpec, dict],
]


def env_scale(default: float = 1.0) -> float:
    """Workload scale from ``REPRO_SCALE`` (default: calibrated 1.0).

    A malformed value (e.g. ``REPRO_SCALE=0.2.5``) falls back to
    ``default`` *with a warning* — silently simulating at the wrong scale
    costs hours at the calibrated scale.
    """
    raw = os.environ.get("REPRO_SCALE")
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        warnings.warn(
            f"ignoring malformed REPRO_SCALE={raw!r} (not a float); "
            f"using scale {default:g}",
            RuntimeWarning,
            stacklevel=2,
        )
        return default


def env_jobs(default: int = 1) -> int:
    """Parallel sweep width from ``REPRO_JOBS`` (default: serial).

    Malformed values warn and fall back, mirroring :func:`env_scale`;
    values below 1 are clamped to 1.
    """
    raw = os.environ.get("REPRO_JOBS")
    if raw is None:
        return default
    try:
        jobs = int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring malformed REPRO_JOBS={raw!r} (not an int); "
            f"using {default} job(s)",
            RuntimeWarning,
            stacklevel=2,
        )
        return default
    return max(1, jobs)


def env_par_min_points(default: int = 4) -> int:
    """Minimum cache-miss count before :meth:`Runner.run_many` fans out
    over a process pool, from ``REPRO_PAR_MIN_POINTS``.

    Pool startup (interpreter forks/spawns, module imports, payload
    pickling) costs real wall clock; on small grids a serial loop wins
    — the ROADMAP's 24-point measurement had parallel-cold *slower* than
    serial-cold.  Below the threshold ``run_many`` runs its misses
    serially and records that path in :attr:`Runner.sweep_paths`.
    Malformed values warn and fall back, mirroring :func:`env_jobs`;
    values below 1 are clamped to 1 (1 = always parallel when jobs > 1).
    """
    raw = os.environ.get("REPRO_PAR_MIN_POINTS")
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring malformed REPRO_PAR_MIN_POINTS={raw!r} (not an "
            f"int); using {default}",
            RuntimeWarning,
            stacklevel=2,
        )
        return default
    return max(1, value)


def _fmt_value(v: object) -> str:
    """``{:.3f}`` when the value supports it, ``str`` otherwise."""
    try:
        return f"{v:.3f}"
    except (TypeError, ValueError):
        return str(v)


@dataclass
class ExperimentReport:
    """Uniform output of one experiment."""

    experiment: str
    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    summary: Dict[str, float] = field(default_factory=dict)
    paper: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable table plus headline comparison.

        Summary/paper entries are usually floats but occasionally labels
        (e.g. an application name); formatting degrades to ``str`` for
        anything ``{:.3f}`` rejects instead of crashing the report.
        """
        parts = [format_dict_table(self.rows, self.columns,
                                   title=f"[{self.experiment}] {self.title}")]
        if self.summary:
            parts.append("measured: " + ", ".join(
                f"{k}={_fmt_value(v)}" for k, v in self.summary.items()))
        if self.paper:
            parts.append("paper:    " + ", ".join(
                f"{k}={_fmt_value(v)}" for k, v in self.paper.items()))
        return "\n".join(parts)


def _simulate_point(point: Tuple[AppProfile, DesignSpec, SimConfig]) -> SimResult:
    """Process-pool worker: one pure simulation from its frozen inputs."""
    profile, spec, cfg = point
    return simulate(profile, spec, cfg)


class Runner:
    """Memoizing simulation runner shared across experiments.

    Parameters
    ----------
    config:
        Base :class:`SimConfig`; defaults to ``SimConfig(scale=env_scale())``.
    jobs:
        Process-pool width for :meth:`run_many` misses.  ``None`` reads
        ``REPRO_JOBS`` (default 1 = serial in-process).
    cache:
        Persistent result cache: a :class:`DiskResultCache`, a directory
        path, ``None`` to consult ``REPRO_CACHE_DIR`` (off when unset),
        or ``False`` to disable the disk layer regardless of environment.
    """

    def __init__(
        self,
        config: Optional[SimConfig] = None,
        jobs: Optional[int] = None,
        cache: Union[DiskResultCache, str, None, bool] = None,
    ):
        self.config = config or SimConfig(scale=env_scale())
        self.jobs = env_jobs() if jobs is None else max(1, int(jobs))
        if cache is None:
            self.disk_cache: Optional[DiskResultCache] = cache_from_env()
        elif cache is False:
            self.disk_cache = None
        elif isinstance(cache, DiskResultCache):
            self.disk_cache = cache
        else:
            self.disk_cache = DiskResultCache(cache)
        self._cache: Dict[tuple, SimResult] = {}
        self.sims_run = 0
        # Aggregate simulator observability (fresh runs only — cache hits
        # cost no simulator time): total wall seconds spent inside
        # GPUSystem.run and total events drained there.  Parallel sweeps
        # accumulate the per-process wall times, so the aggregate events/s
        # reflects per-sim throughput, not sweep elapsed time.
        self.sim_wall_s = 0.0
        self.sim_events = 0
        # Which execution path each run_many miss batch took
        # ("parallel[fork]", "serial[below-min-points]", ...) -> count.
        # Surfaced by throughput_summary() so the small-grid serial
        # fallback is observable, not silent.
        self.sweep_paths: Dict[str, int] = {}

    # -- configuration resolution -----------------------------------------

    def _resolve(
        self,
        app,
        scheduler: Optional[str] = None,
        l1_latency_override: Optional[float] = None,
        gpu: Optional[GPUConfig] = None,
        scale: Optional[float] = None,
        overrides: Optional[dict] = None,
    ) -> Tuple[AppProfile, SimConfig]:
        """Resolve one request to its frozen (profile, config) pair."""
        profile = get_app(app) if isinstance(app, str) else app
        cfg = self.config
        changes = dict(overrides) if overrides else {}
        if scheduler is not None:
            changes["cta_scheduler"] = scheduler
        if l1_latency_override is not None:
            changes["l1_latency_override"] = l1_latency_override
        if gpu is not None:
            changes["gpu"] = gpu
        if scale is not None:
            changes["scale"] = scale
        if changes:
            cfg = dataclasses.replace(cfg, **changes)
        return profile, cfg

    # -- the three result layers -------------------------------------------

    def _disk_get(self, point: tuple) -> Optional[SimResult]:
        if self.disk_cache is None:
            return None
        return self.disk_cache.get(sim_cache_key(*point))

    def _disk_put(self, point: tuple, result: SimResult) -> None:
        if self.disk_cache is not None:
            self.disk_cache.put(sim_cache_key(*point), result)

    def _lookup(self, point: tuple) -> Optional[SimResult]:
        """Memory layer, then disk layer (promoting disk hits to memory)."""
        result = self._cache.get(point)
        if result is None:
            result = self._disk_get(point)
            if result is not None:
                self._cache[point] = result
        return result

    def _store_miss(self, point: tuple, result: SimResult) -> None:
        self._cache[point] = result
        self.sims_run += 1
        self.sim_wall_s += result.wall_time_s
        self.sim_events += int(round(result.wall_time_s * result.events_per_s))
        self._disk_put(point, result)

    # -- public API ---------------------------------------------------------

    def run(
        self,
        app,
        spec: DesignSpec,
        scheduler: Optional[str] = None,
        l1_latency_override: Optional[float] = None,
        gpu: Optional[GPUConfig] = None,
        scale: Optional[float] = None,
        overrides: Optional[dict] = None,
    ) -> SimResult:
        """Simulate (from the memory or disk cache when possible).

        ``overrides`` maps additional :class:`SimConfig` field names to
        values (used by the ablation studies).
        """
        profile, cfg = self._resolve(
            app, scheduler=scheduler, l1_latency_override=l1_latency_override,
            gpu=gpu, scale=scale, overrides=overrides,
        )
        point = (profile, spec, cfg)
        result = self._lookup(point)
        if result is None:
            result = _simulate_point(point)
            self._store_miss(point, result)
        return result

    def resolve_points(
        self, points: Iterable[SweepPoint]
    ) -> List[Tuple[AppProfile, DesignSpec, SimConfig]]:
        """Resolve sweep points to frozen (profile, spec, config) triples.

        Each point is ``(app, spec)`` or ``(app, spec, run_kwargs)``.
        This is the exact pool-boundary payload :meth:`run_many` submits;
        the CLI and the SimShard confirmer resolve through here so their
        :func:`~repro.sim.validation.validate_grid` pre-flight sees the
        same triples the pool would.
        """
        resolved: List[Tuple[AppProfile, DesignSpec, SimConfig]] = []
        for item in points:
            if len(item) == 2:
                app, spec = item  # type: ignore[misc]
                kwargs: dict = {}
            elif len(item) == 3:
                app, spec, kwargs = item  # type: ignore[misc]
            else:
                raise ValueError(
                    f"sweep point must be (app, spec[, kwargs]); got {item!r}"
                )
            profile, cfg = self._resolve(app, **kwargs)
            resolved.append((profile, spec, cfg))
        return resolved

    def run_many(
        self,
        points: Iterable[SweepPoint],
        jobs: Optional[int] = None,
        mp_context: Union[str, multiprocessing.context.BaseContext, None] = None,
        par_min_points: Optional[int] = None,
    ) -> List[SimResult]:
        """Run a whole sweep grid; results in submission order.

        Each point is ``(app, spec)`` or ``(app, spec, run_kwargs)``.
        The resolved grid is pre-flighted through
        :func:`~repro.sim.validation.validate_grid` before anything is
        submitted (duplicate points are allowed here — they collapse to
        one simulation).  Points not served by a cache layer fan out
        over a ``ProcessPoolExecutor`` when the effective ``jobs``
        exceeds 1 *and* the miss count reaches ``par_min_points``
        (default ``REPRO_PAR_MIN_POINTS``, 4 — pool startup dominates on
        smaller grids, so those run serially; :attr:`sweep_paths`
        records which path ran).  ``mp_context`` selects the pool start
        method (``"fork"``/``"spawn"`` name or a multiprocessing
        context; default: the platform default).  Ordering, fingerprints
        and ``sims_run`` accounting are identical across every path,
        because each simulation is a pure function of its frozen inputs.
        """
        resolved = self.resolve_points(points)
        validate_grid(resolved, on_duplicate="collapse")

        results: List[Optional[SimResult]] = [None] * len(resolved)
        pending: Dict[tuple, List[int]] = {}
        for i, point in enumerate(resolved):
            hit = self._lookup(point)
            if hit is not None:
                results[i] = hit
            else:
                pending.setdefault(point, []).append(i)

        misses = list(pending)
        if misses:
            width = self.jobs if jobs is None else max(1, int(jobs))
            floor = (
                env_par_min_points() if par_min_points is None
                else max(1, int(par_min_points))
            )
            if width > 1 and len(misses) >= max(2, floor):
                ctx = (
                    multiprocessing.get_context(mp_context)
                    if isinstance(mp_context, str) else mp_context
                )
                path = f"parallel[{ctx.get_start_method()}]" if ctx else "parallel"
                with ProcessPoolExecutor(
                    max_workers=min(width, len(misses)), mp_context=ctx
                ) as pool:
                    fresh = list(pool.map(_simulate_point, misses, chunksize=1))
            else:
                path = (
                    "serial[below-min-points]"
                    if width > 1 and len(misses) > 1
                    else "serial"
                )
                fresh = [_simulate_point(p) for p in misses]
            self.sweep_paths[path] = self.sweep_paths.get(path, 0) + 1
            for point, result in zip(misses, fresh):
                self._store_miss(point, result)
                for i in pending[point]:
                    results[i] = result
        return results  # type: ignore[return-value]

    def throughput_summary(self) -> str:
        """One-line aggregate of simulator throughput (``repro figures``,
        bench harness), including which sweep path(s) ran the misses.
        Empty when every request was cache-served."""
        if self.sims_run == 0 or self.sim_wall_s <= 0.0:
            return ""
        rate = self.sim_events / self.sim_wall_s
        line = (
            f"{self.sims_run} sim(s), {self.sim_wall_s:.1f}s simulator time, "
            f"{rate:,.0f} events/s"
        )
        if self.sweep_paths:
            paths = ", ".join(
                f"{k} x{n}" for k, n in sorted(self.sweep_paths.items())
            )
            line += f" [{paths}]"
        return line

    def speedup(self, app, spec: DesignSpec, **kwargs) -> float:
        """IPC of ``spec`` normalized to the baseline design (same config)."""
        base = self.run(app, BASELINE, **kwargs)
        res = self.run(app, spec, **kwargs)
        return res.speedup_vs(base)

    def result_fingerprints(self) -> Dict[str, Dict[str, object]]:
        """Bit-exact identity of every memoized result, keyed by the
        content-addressed cache key (comparing two runners that covered
        the same grid — e.g. serial vs parallel — is a dict equality)."""
        return {
            sim_cache_key(*point): result.fingerprint()
            for point, result in self._cache.items()
        }

    def clear(self) -> None:
        """Drop the in-memory layer (the disk cache is left untouched)."""
        self._cache.clear()


_DEFAULT: Optional[Runner] = None


def default_runner() -> Runner:
    """Process-wide shared runner (used by the benchmark harness).

    Revalidated against the environment on every call: if ``REPRO_SCALE``
    changed since the cached runner was built, a fresh runner (with a
    fresh memo and current ``REPRO_JOBS``/``REPRO_CACHE_DIR`` settings)
    replaces it — a stale runner would silently simulate at the old scale
    *and* serve results memoized under it.
    """
    global _DEFAULT
    if _DEFAULT is None or _DEFAULT.config.scale != env_scale():
        _DEFAULT = Runner()
    return _DEFAULT


def profile_for(app) -> AppProfile:
    return get_app(app) if isinstance(app, str) else app
