"""Shared experiment infrastructure.

:class:`Runner` is a memoizing front-end to :func:`repro.sim.system.simulate`:
experiments request ``runner.run(app_name, spec, ...)`` and identical
requests are served from cache.  The workload scale can be set globally via
the ``REPRO_SCALE`` environment variable (1.0 = the calibrated benchmark
scale; tests use much smaller scales and only assert coarse invariants).

:class:`ExperimentReport` is the uniform result: named rows, a summary of
headline numbers, the paper's reported values, and a text rendering.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import format_dict_table
from repro.core.designs import DesignSpec
from repro.sim.config import GPUConfig, SimConfig
from repro.sim.results import SimResult
from repro.sim.system import simulate
from repro.workloads.profile import AppProfile
from repro.workloads.suite import get_app

#: The paper's four proposed designs (Section VIII) in presentation order.
PROPOSED_DESIGNS: Sequence[DesignSpec] = (
    DesignSpec.private(40),
    DesignSpec.shared(40),
    DesignSpec.clustered(40, 10),
    DesignSpec.clustered(40, 10, boost=2.0),
)

BASELINE = DesignSpec.baseline()


def env_scale(default: float = 1.0) -> float:
    """Workload scale from ``REPRO_SCALE`` (default: calibrated 1.0)."""
    try:
        return float(os.environ.get("REPRO_SCALE", default))
    except ValueError:
        return default


@dataclass
class ExperimentReport:
    """Uniform output of one experiment."""

    experiment: str
    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    summary: Dict[str, float] = field(default_factory=dict)
    paper: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable table plus headline comparison."""
        parts = [format_dict_table(self.rows, self.columns,
                                   title=f"[{self.experiment}] {self.title}")]
        if self.summary:
            parts.append("measured: " + ", ".join(
                f"{k}={v:.3f}" for k, v in self.summary.items()))
        if self.paper:
            parts.append("paper:    " + ", ".join(
                f"{k}={v:.3f}" for k, v in self.paper.items()))
        return "\n".join(parts)


class Runner:
    """Memoizing simulation runner shared across experiments."""

    def __init__(self, config: Optional[SimConfig] = None):
        self.config = config or SimConfig(scale=env_scale())
        self._cache: Dict[tuple, SimResult] = {}
        self.sims_run = 0

    def run(
        self,
        app,
        spec: DesignSpec,
        scheduler: Optional[str] = None,
        l1_latency_override: Optional[float] = None,
        gpu: Optional[GPUConfig] = None,
        scale: Optional[float] = None,
        overrides: Optional[dict] = None,
    ) -> SimResult:
        """Simulate (from cache when possible).

        ``overrides`` maps additional :class:`SimConfig` field names to
        values (used by the ablation studies).
        """
        profile = get_app(app) if isinstance(app, str) else app
        cfg = self.config
        changes = dict(overrides) if overrides else {}
        if scheduler is not None:
            changes["cta_scheduler"] = scheduler
        if l1_latency_override is not None:
            changes["l1_latency_override"] = l1_latency_override
        if gpu is not None:
            changes["gpu"] = gpu
        if scale is not None:
            changes["scale"] = scale
        if changes:
            cfg = dataclasses.replace(cfg, **changes)
        key = (profile, spec, cfg)
        result = self._cache.get(key)
        if result is None:
            result = simulate(profile, spec, cfg)
            self._cache[key] = result
            self.sims_run += 1
        return result

    def speedup(self, app, spec: DesignSpec, **kwargs) -> float:
        """IPC of ``spec`` normalized to the baseline design (same config)."""
        base = self.run(app, BASELINE, **kwargs)
        res = self.run(app, spec, **kwargs)
        return res.speedup_vs(base)

    def clear(self) -> None:
        self._cache.clear()


_DEFAULT: Optional[Runner] = None


def default_runner() -> Runner:
    """Process-wide shared runner (used by the benchmark harness)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Runner()
    return _DEFAULT


def profile_for(app) -> AppProfile:
    return get_app(app) if isinstance(app, str) else app
