"""Shared experiment infrastructure.

:class:`Runner` is a memoizing front-end to :func:`repro.sim.system.simulate`
with three result layers:

1. an in-process dict keyed by the frozen (profile, spec, config) triple,
2. an optional persistent on-disk cache
   (:class:`repro.sim.store.DiskResultCache`), shared across processes and
   sessions, content-addressed by :func:`repro.sim.store.sim_cache_key`,
3. the simulator itself.

Experiments request ``runner.run(app_name, spec, ...)`` one point at a
time, or pre-submit a whole (application x design) grid with
:meth:`Runner.run_many`, which fans cache misses out over a process pool
(``jobs``/``REPRO_JOBS``) and returns results in submission order.  The
pool is normally acquired from the persistent
:class:`~repro.sim.fleet.WorkerFleet` (warm across calls and experiment
modules; ``REPRO_FLEET=0`` or ``Runner(fleet=False)`` falls back to a
per-call pool), misses are dispatched largest-estimated-work-first with
an adaptive chunksize, and — when a disk cache is active — workers
persist their own results and ship only slim ``(key, fingerprint,
counters)`` payloads back.  All paths are bit-deterministic: a parallel,
fleet-warm, slim-transported or cache-served result has the same
:meth:`~repro.sim.results.SimResult.fingerprint` as a serial cold run.

The workload scale can be set globally via the ``REPRO_SCALE`` environment
variable (1.0 = the calibrated benchmark scale; tests use much smaller
scales and only assert coarse invariants).

:class:`ExperimentReport` is the uniform result: named rows, a summary of
headline numbers, the paper's reported values, and a text rendering.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.tables import format_dict_table
from repro.core.designs import DesignSpec
from repro.sim.config import GPUConfig, SimConfig
from repro.sim.fleet import (
    SLIM_TAG,
    _fleet_run,
    adaptive_chunksize,
    chunksize_from_env,
    fleet_env_enabled,
    get_fleet,
    order_by_estimated_work,
)
from repro.sim.results import SimResult
from repro.sim.store import DiskResultCache, cache_from_env, sim_cache_key
from repro.sim.system import simulate
from repro.sim.validation import audit_slim_transport, validate_grid
from repro.workloads.profile import AppProfile
from repro.workloads.suite import get_app

#: The paper's four proposed designs (Section VIII) in presentation order.
PROPOSED_DESIGNS: Sequence[DesignSpec] = (
    DesignSpec.private(40),
    DesignSpec.shared(40),
    DesignSpec.clustered(40, 10),
    DesignSpec.clustered(40, 10, boost=2.0),
)

BASELINE = DesignSpec.baseline()

#: One sweep point for :meth:`Runner.run_many`: ``(app, spec)`` or
#: ``(app, spec, run_kwargs)`` where ``run_kwargs`` are the keyword
#: arguments :meth:`Runner.run` accepts (scheduler, overrides, ...).
SweepPoint = Union[
    Tuple[object, DesignSpec],
    Tuple[object, DesignSpec, dict],
]


def env_scale(default: float = 1.0) -> float:
    """Workload scale from ``REPRO_SCALE`` (default: calibrated 1.0).

    A malformed value (e.g. ``REPRO_SCALE=0.2.5``) falls back to
    ``default`` *with a warning* — silently simulating at the wrong scale
    costs hours at the calibrated scale.
    """
    raw = os.environ.get("REPRO_SCALE")
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        warnings.warn(
            f"ignoring malformed REPRO_SCALE={raw!r} (not a float); "
            f"using scale {default:g}",
            RuntimeWarning,
            stacklevel=2,
        )
        return default


def env_jobs(default: int = 1) -> int:
    """Parallel sweep width from ``REPRO_JOBS`` (default: serial).

    Malformed values warn and fall back, mirroring :func:`env_scale`;
    values below 1 are clamped to 1.
    """
    raw = os.environ.get("REPRO_JOBS")
    if raw is None:
        return default
    try:
        jobs = int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring malformed REPRO_JOBS={raw!r} (not an int); "
            f"using {default} job(s)",
            RuntimeWarning,
            stacklevel=2,
        )
        return default
    return max(1, jobs)


def env_par_min_points(default: int = 4) -> int:
    """Minimum cache-miss count before :meth:`Runner.run_many` fans out
    over a process pool, from ``REPRO_PAR_MIN_POINTS``.

    Pool startup (interpreter forks/spawns, module imports, payload
    pickling) costs real wall clock; on small grids a serial loop wins
    — the ROADMAP's 24-point measurement had parallel-cold *slower* than
    serial-cold.  Below the threshold ``run_many`` runs its misses
    serially and records that path in :attr:`Runner.sweep_paths`.
    Malformed values warn and fall back, mirroring :func:`env_jobs`;
    values below 1 are clamped to 1 (1 = always parallel when jobs > 1).
    """
    raw = os.environ.get("REPRO_PAR_MIN_POINTS")
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring malformed REPRO_PAR_MIN_POINTS={raw!r} (not an "
            f"int); using {default}",
            RuntimeWarning,
            stacklevel=2,
        )
        return default
    return max(1, value)


def _fmt_value(v: object) -> str:
    """``{:.3f}`` when the value supports it, ``str`` otherwise."""
    try:
        return f"{v:.3f}"
    except (TypeError, ValueError):
        return str(v)


@dataclass
class ExperimentReport:
    """Uniform output of one experiment."""

    experiment: str
    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    summary: Dict[str, float] = field(default_factory=dict)
    paper: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable table plus headline comparison.

        Summary/paper entries are usually floats but occasionally labels
        (e.g. an application name); formatting degrades to ``str`` for
        anything ``{:.3f}`` rejects instead of crashing the report.
        """
        parts = [format_dict_table(self.rows, self.columns,
                                   title=f"[{self.experiment}] {self.title}")]
        if self.summary:
            parts.append("measured: " + ", ".join(
                f"{k}={_fmt_value(v)}" for k, v in self.summary.items()))
        if self.paper:
            parts.append("paper:    " + ", ".join(
                f"{k}={_fmt_value(v)}" for k, v in self.paper.items()))
        return "\n".join(parts)


def _simulate_point(point: Tuple[AppProfile, DesignSpec, SimConfig]) -> SimResult:
    """Process-pool worker: one pure simulation from its frozen inputs."""
    profile, spec, cfg = point
    return simulate(profile, spec, cfg)


class Runner:
    """Memoizing simulation runner shared across experiments.

    Parameters
    ----------
    config:
        Base :class:`SimConfig`; defaults to ``SimConfig(scale=env_scale())``.
    jobs:
        Process-pool width for :meth:`run_many` misses.  ``None`` reads
        ``REPRO_JOBS`` (default 1 = serial in-process).
    cache:
        Persistent result cache: a :class:`DiskResultCache`, a directory
        path, ``None`` to consult ``REPRO_CACHE_DIR`` (off when unset),
        or ``False`` to disable the disk layer regardless of environment.
    fleet:
        Pool acquisition for :meth:`run_many` misses: ``None`` consults
        ``REPRO_FLEET`` (fleet on unless set to ``0``), ``True`` forces
        the persistent :class:`~repro.sim.fleet.WorkerFleet`, ``False``
        forces the legacy per-call ``ProcessPoolExecutor``.
    """

    def __init__(
        self,
        config: Optional[SimConfig] = None,
        jobs: Optional[int] = None,
        cache: Union[DiskResultCache, str, None, bool] = None,
        fleet: Optional[bool] = None,
    ):
        self.config = config or SimConfig(scale=env_scale())
        self.jobs = env_jobs() if jobs is None else max(1, int(jobs))
        self.fleet = fleet
        if cache is None:
            self.disk_cache: Optional[DiskResultCache] = cache_from_env()
        elif cache is False:
            self.disk_cache = None
        elif isinstance(cache, DiskResultCache):
            self.disk_cache = cache
        else:
            self.disk_cache = DiskResultCache(cache)
        self._cache: Dict[tuple, SimResult] = {}
        self.sims_run = 0
        # Aggregate simulator observability (fresh runs only — cache hits
        # cost no simulator time): total wall seconds spent inside
        # GPUSystem.run and total events drained there.  Parallel sweeps
        # accumulate the per-process wall times, so the aggregate events/s
        # reflects per-sim throughput, not sweep elapsed time.
        self.sim_wall_s = 0.0
        self.sim_events = 0
        # Which execution path each run_many miss batch took
        # ("parallel[fleet:fork]", "serial[below-min-points]", ...) ->
        # count.  Surfaced by throughput_summary() so the small-grid
        # serial fallback is observable, not silent.
        self.sweep_paths: Dict[str, int] = {}
        # Fleet reuse observed by *this* runner's run_many calls: deltas
        # of the process-wide WorkerFleet counters (cold_starts,
        # warm_acquires, spinup_wall_s) across each acquire.  Surfaced by
        # throughput_summary() so pool amortization is visible from
        # `repro figures` stderr.
        self.fleet_stats: Dict[str, float] = {}

    # -- configuration resolution -----------------------------------------

    def _resolve(
        self,
        app,
        scheduler: Optional[str] = None,
        l1_latency_override: Optional[float] = None,
        gpu: Optional[GPUConfig] = None,
        scale: Optional[float] = None,
        overrides: Optional[dict] = None,
    ) -> Tuple[AppProfile, SimConfig]:
        """Resolve one request to its frozen (profile, config) pair."""
        profile = get_app(app) if isinstance(app, str) else app
        cfg = self.config
        changes = dict(overrides) if overrides else {}
        if scheduler is not None:
            changes["cta_scheduler"] = scheduler
        if l1_latency_override is not None:
            changes["l1_latency_override"] = l1_latency_override
        if gpu is not None:
            changes["gpu"] = gpu
        if scale is not None:
            changes["scale"] = scale
        if changes:
            cfg = dataclasses.replace(cfg, **changes)
        return profile, cfg

    # -- the three result layers -------------------------------------------

    def _disk_get(self, point: tuple) -> Optional[SimResult]:
        if self.disk_cache is None:
            return None
        return self.disk_cache.get(sim_cache_key(*point))

    def _disk_put(self, point: tuple, result: SimResult) -> None:
        if self.disk_cache is not None:
            self.disk_cache.put(sim_cache_key(*point), result)

    def _lookup(self, point: tuple) -> Optional[SimResult]:
        """Memory layer, then disk layer (promoting disk hits to memory)."""
        result = self._cache.get(point)
        if result is None:
            result = self._disk_get(point)
            if result is not None:
                self._cache[point] = result
        return result

    def _store_miss(
        self, point: tuple, result: SimResult, persist: bool = True
    ) -> None:
        self._cache[point] = result
        self.sims_run += 1
        self.sim_wall_s += result.wall_time_s
        self.sim_events += int(round(result.wall_time_s * result.events_per_s))
        if persist:
            # Slim-transported results were already persisted by the
            # worker (persist=False skips the redundant disk write).
            self._disk_put(point, result)

    # -- public API ---------------------------------------------------------

    def run(
        self,
        app,
        spec: DesignSpec,
        scheduler: Optional[str] = None,
        l1_latency_override: Optional[float] = None,
        gpu: Optional[GPUConfig] = None,
        scale: Optional[float] = None,
        overrides: Optional[dict] = None,
    ) -> SimResult:
        """Simulate (from the memory or disk cache when possible).

        ``overrides`` maps additional :class:`SimConfig` field names to
        values (used by the ablation studies).
        """
        profile, cfg = self._resolve(
            app, scheduler=scheduler, l1_latency_override=l1_latency_override,
            gpu=gpu, scale=scale, overrides=overrides,
        )
        point = (profile, spec, cfg)
        result = self._lookup(point)
        if result is None:
            result = _simulate_point(point)
            self._store_miss(point, result)
        return result

    def resolve_points(
        self, points: Iterable[SweepPoint]
    ) -> List[Tuple[AppProfile, DesignSpec, SimConfig]]:
        """Resolve sweep points to frozen (profile, spec, config) triples.

        Each point is ``(app, spec)`` or ``(app, spec, run_kwargs)``.
        This is the exact pool-boundary payload :meth:`run_many` submits;
        the CLI and the SimShard confirmer resolve through here so their
        :func:`~repro.sim.validation.validate_grid` pre-flight sees the
        same triples the pool would.
        """
        resolved: List[Tuple[AppProfile, DesignSpec, SimConfig]] = []
        for item in points:
            if len(item) == 2:
                app, spec = item  # type: ignore[misc]
                kwargs: dict = {}
            elif len(item) == 3:
                app, spec, kwargs = item  # type: ignore[misc]
            else:
                raise ValueError(
                    f"sweep point must be (app, spec[, kwargs]); got {item!r}"
                )
            profile, cfg = self._resolve(app, **kwargs)
            resolved.append((profile, spec, cfg))
        return resolved

    def run_many(
        self,
        points: Iterable[SweepPoint],
        jobs: Optional[int] = None,
        mp_context: Union[str, multiprocessing.context.BaseContext, None] = None,
        par_min_points: Optional[int] = None,
    ) -> List[SimResult]:
        """Run a whole sweep grid; results in submission order.

        Each point is ``(app, spec)`` or ``(app, spec, run_kwargs)``.
        The resolved grid is pre-flighted through
        :func:`~repro.sim.validation.validate_grid` before anything is
        submitted (duplicate points are allowed here — they collapse to
        one simulation).  Points not served by a cache layer fan out
        over a process pool when the effective ``jobs`` exceeds 1 *and*
        the miss count reaches ``par_min_points`` (default
        ``REPRO_PAR_MIN_POINTS``, 4 — pool startup dominates on smaller
        grids, so those run serially; :attr:`sweep_paths` records which
        path ran).  The pool is acquired from the persistent
        :class:`~repro.sim.fleet.WorkerFleet` unless the fleet is opted
        out (``REPRO_FLEET=0`` / ``fleet=False``), misses are dispatched
        largest-estimated-work-first with an adaptive (or
        ``REPRO_CHUNK``-pinned) chunksize, and with a disk cache active
        the workers use slim result transport (see
        :mod:`repro.sim.fleet`).  ``mp_context`` selects the pool start
        method (``"fork"``/``"spawn"`` name or a multiprocessing
        context; default: the platform default).  Ordering, fingerprints
        and ``sims_run`` accounting are identical across every path,
        because each simulation is a pure function of its frozen inputs.
        """
        resolved = self.resolve_points(points)
        keys = validate_grid(resolved, on_duplicate="collapse")

        results: List[Optional[SimResult]] = [None] * len(resolved)
        pending: Dict[tuple, List[int]] = {}
        key_of: Dict[tuple, str] = {}
        for i, (point, key) in enumerate(zip(resolved, keys)):
            key_of.setdefault(point, key)
            hit = self._lookup(point)
            if hit is not None:
                results[i] = hit
            else:
                pending.setdefault(point, []).append(i)

        misses = list(pending)
        if misses:
            width = self.jobs if jobs is None else max(1, int(jobs))
            floor = (
                env_par_min_points() if par_min_points is None
                else max(1, int(par_min_points))
            )
            if width > 1 and len(misses) >= max(2, floor):
                path, fresh = self._pool_misses(
                    misses, width, mp_context, key_of
                )
            else:
                path = (
                    "serial[below-min-points]"
                    if width > 1 and len(misses) > 1
                    else "serial"
                )
                fresh = [(p, _simulate_point(p), True) for p in misses]
            self.sweep_paths[path] = self.sweep_paths.get(path, 0) + 1
            for point, result, persist in fresh:
                self._store_miss(point, result, persist=persist)
                for i in pending[point]:
                    results[i] = result
        return results  # type: ignore[return-value]

    # -- pool dispatch ------------------------------------------------------

    def _pool_misses(
        self,
        misses: List[tuple],
        width: int,
        mp_context: Union[str, multiprocessing.context.BaseContext, None],
        key_of: Dict[tuple, str],
    ) -> Tuple[str, List[Tuple[tuple, SimResult, bool]]]:
        """Fan the misses out over a pool; returns the taken path name
        and ``(point, result, persist)`` triples in ``misses`` order.

        Misses are dispatched largest-estimated-work-first so one heavy
        point cannot land at the end of the schedule and stretch the
        straggler tail; the chunksize comes from ``REPRO_CHUNK`` or
        :func:`~repro.sim.fleet.adaptive_chunksize` (the old hard-coded
        ``chunksize=1`` paid one IPC round trip per point on both the
        fleet and the legacy path).
        """
        ctx = (
            multiprocessing.get_context(mp_context)
            if isinstance(mp_context, str) else mp_context
        )
        ordered = order_by_estimated_work(misses)
        chunk = chunksize_from_env()
        if chunk is None:
            chunk = adaptive_chunksize(len(ordered), width)
        use_fleet = (
            fleet_env_enabled() if self.fleet is None else bool(self.fleet)
        )
        if use_fleet:
            method = (
                ctx.get_start_method() if ctx is not None
                else multiprocessing.get_start_method()
            )
            fleet = get_fleet()
            before = fleet.stats()
            pool = fleet.acquire(width, mp_context=ctx)
            self._note_fleet(before, fleet.stats())
            root = (
                str(self.disk_cache.root)
                if self.disk_cache is not None else None
            )
            tasks = [(p, root) for p in ordered]
            try:
                payloads = list(pool.map(_fleet_run, tasks, chunksize=chunk))
            except BrokenProcessPool:
                # A dead executor must never be handed out again; drop it
                # so the next acquire builds a fresh pool.
                fleet.invalidate(width, mp_context=ctx)
                raise
            by_point = {
                p: self._receive_transport(p, payload, key_of)
                for p, payload in zip(ordered, payloads)
            }
            path = f"parallel[fleet:{method}]"
            return path, [(p,) + by_point[p] for p in misses]
        # Legacy per-call pool (REPRO_FLEET=0 / Runner(fleet=False)).
        method = (
            ctx.get_start_method() if ctx is not None
            else multiprocessing.get_start_method()
        )
        path = f"parallel[{method}]"
        with ProcessPoolExecutor(
            max_workers=min(width, len(ordered)), mp_context=ctx
        ) as pool:
            out = list(pool.map(_simulate_point, ordered, chunksize=chunk))
        by_legacy = dict(zip(ordered, out))
        return path, [(p, by_legacy[p], True) for p in misses]

    def _receive_transport(
        self, point: tuple, payload: object, key_of: Dict[tuple, str]
    ) -> Tuple[SimResult, bool]:
        """Turn one fleet-worker payload into ``(result, persist)``.

        Full :class:`SimResult` payloads pass through (and still need the
        parent-side disk write).  Slim payloads are rehydrated from the
        disk cache and audited against the worker's fingerprint hash
        (:func:`~repro.sim.validation.audit_slim_transport`); any audit
        problem downgrades the point to an in-process re-simulation —
        correctness over transport speed.
        """
        if not (
            isinstance(payload, tuple)
            and len(payload) == 5
            and payload[0] == SLIM_TAG
        ):
            return payload, True  # type: ignore[return-value]
        _tag, key, fp_sha, wall_s, events_per_s = payload
        rehydrated = (
            self.disk_cache.get(key) if self.disk_cache is not None else None
        )
        problems = audit_slim_transport(
            key_of.get(point, ""), key, fp_sha, rehydrated
        )
        if problems:
            warnings.warn(
                "slim result transport failed its audit ("
                + "; ".join(problems) + "); re-simulating in-process",
                RuntimeWarning,
                stacklevel=2,
            )
            return _simulate_point(point), True
        assert rehydrated is not None
        # The disk entry drops the observability fields; carry the
        # worker's measured wall clock over so throughput accounting is
        # identical to full-pickle transport.
        rehydrated.wall_time_s = wall_s
        rehydrated.events_per_s = events_per_s
        return rehydrated, False

    def _note_fleet(
        self, before: Dict[str, float], after: Dict[str, float]
    ) -> None:
        """Fold one acquire's fleet-counter deltas into ``fleet_stats``."""
        for key in ("cold_starts", "warm_acquires", "spinup_wall_s"):
            delta = after.get(key, 0.0) - before.get(key, 0.0)
            if delta:
                self.fleet_stats[key] = self.fleet_stats.get(key, 0.0) + delta

    def throughput_summary(self) -> str:
        """One-line aggregate of simulator throughput (``repro figures``,
        bench harness), including which sweep path(s) ran the misses.
        Empty when every request was cache-served."""
        if self.sims_run == 0 or self.sim_wall_s <= 0.0:
            return ""
        rate = self.sim_events / self.sim_wall_s
        line = (
            f"{self.sims_run} sim(s), {self.sim_wall_s:.1f}s simulator time, "
            f"{rate:,.0f} events/s"
        )
        if self.sweep_paths:
            paths = ", ".join(
                f"{k} x{n}" for k, n in sorted(self.sweep_paths.items())
            )
            line += f" [{paths}]"
        if self.fleet_stats:
            cold = int(self.fleet_stats.get("cold_starts", 0))
            warm = int(self.fleet_stats.get("warm_acquires", 0))
            spin = self.fleet_stats.get("spinup_wall_s", 0.0)
            line += (
                f" [fleet: {cold} cold / {warm} warm acquire(s), "
                f"spin-up {spin:.2f}s]"
            )
        return line

    def speedup(self, app, spec: DesignSpec, **kwargs) -> float:
        """IPC of ``spec`` normalized to the baseline design (same config)."""
        base = self.run(app, BASELINE, **kwargs)
        res = self.run(app, spec, **kwargs)
        return res.speedup_vs(base)

    def result_fingerprints(self) -> Dict[str, Dict[str, object]]:
        """Bit-exact identity of every memoized result, keyed by the
        content-addressed cache key (comparing two runners that covered
        the same grid — e.g. serial vs parallel — is a dict equality)."""
        return {
            sim_cache_key(*point): result.fingerprint()
            for point, result in self._cache.items()
        }

    def clear(self) -> None:
        """Drop the in-memory layer (the disk cache is left untouched)."""
        self._cache.clear()


_DEFAULT: Optional[Runner] = None


def default_runner() -> Runner:
    """Process-wide shared runner (used by the benchmark harness).

    Revalidated against the environment on every call: if ``REPRO_SCALE``
    changed since the cached runner was built, a fresh runner (with a
    fresh memo and current ``REPRO_JOBS``/``REPRO_CACHE_DIR`` settings)
    replaces it — a stale runner would silently simulate at the old scale
    *and* serve results memoized under it.
    """
    global _DEFAULT
    if _DEFAULT is None or _DEFAULT.config.scale != env_scale():
        _DEFAULT = Runner()
    return _DEFAULT


def profile_for(app) -> AppProfile:
    return get_app(app) if isinstance(app, str) else app
