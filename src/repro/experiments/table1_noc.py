"""Table I — NoC configurations and peak L1 bandwidth of private DC-L1s.

Purely analytical: for each PrY configuration, the NoC#1/NoC#2 crossbar
shapes derived from the cluster geometry and the peak aggregate L1
bandwidth (with its drop factor versus the baseline's per-core 128 B/cycle
data ports).

Paper: Pr80/Pr40/Pr20/Pr10 drop peak L1 bandwidth by 4x/8x/16x/32x.
"""

from __future__ import annotations

from repro.core.peak_bw import table1_rows
from repro.experiments.base import ExperimentReport, Runner

PAPER = {
    "pr80_drop": 4.0,
    "pr40_drop": 8.0,
    "pr20_drop": 16.0,
    "pr10_drop": 32.0,
}


def run(runner: Runner) -> ExperimentReport:
    gpu = runner.config.gpu
    rows = table1_rows(
        num_cores=gpu.num_cores,
        num_l2=gpu.num_l2_slices,
        line_bytes=gpu.line_bytes,
        flit_bytes=gpu.flit_bytes,
    )
    drops = {
        r["config"].lower() + "_drop": float(r["drop"].rstrip("x"))
        for r in rows
        if r["drop"] != "-"
    }
    return ExperimentReport(
        experiment="tab1",
        title="NoC size and peak L1 bandwidth under private DC-L1 configurations",
        columns=["config", "noc1", "noc2", "peak_bw", "drop"],
        rows=rows,
        summary=drops,
        paper=PAPER,
    )
