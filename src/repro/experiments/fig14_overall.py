"""Figure 14 — overall IPC of all proposed designs.

All four proposed designs (Pr40, Sh40, Sh40+C10, Sh40+C10+Boost) on every
application, normalized to the private-L1 baseline; averaged over the
replication-sensitive set, the insensitive set, and all 28 applications.

Paper: replication-sensitive improvements of 15% / 48% / 41% / 75%;
insensitive drops of 7% / 22% / 11% / <1%; overall +27% for
Sh40+C10+Boost.
"""

from __future__ import annotations

from repro.analysis.metrics import geomean
from repro.experiments.base import BASELINE, PROPOSED_DESIGNS, ExperimentReport, Runner
from repro.workloads.suite import REPLICATION_SENSITIVE, all_apps

PAPER = {
    "sensitive_Pr40": 1.15,
    "sensitive_Sh40": 1.48,
    "sensitive_Sh40+C10": 1.41,
    "sensitive_Sh40+C10+Boost": 1.75,
    "insensitive_Sh40+C10+Boost": 0.99,
    "all_Sh40+C10+Boost": 1.27,
}


def run(runner: Runner) -> ExperimentReport:
    # Pre-submit the full 28 x 5 grid: misses fan out over the runner's
    # process pool and land in its caches; the loops below only read.
    runner.run_many([
        (prof, spec)
        for prof in all_apps()
        for spec in (BASELINE, *PROPOSED_DESIGNS)
    ])
    rows = []
    for prof in all_apps():
        base = runner.run(prof, BASELINE)
        row = {"app": prof.name, "sensitive": prof.name in REPLICATION_SENSITIVE}
        for spec in PROPOSED_DESIGNS:
            row[spec.label] = runner.run(prof, spec).speedup_vs(base)
        rows.append(row)

    summary = {}
    groups = {
        "sensitive": [r for r in rows if r["sensitive"]],
        "insensitive": [r for r in rows if not r["sensitive"]],
        "all": rows,
    }
    for gname, grows in groups.items():
        for spec in PROPOSED_DESIGNS:
            summary[f"{gname}_{spec.label}"] = geomean(r[spec.label] for r in grows)

    columns = ["app", "sensitive"] + [spec.label for spec in PROPOSED_DESIGNS]
    return ExperimentReport(
        experiment="fig14",
        title="IPC of all proposed designs (normalized to private-L1 baseline)",
        columns=columns,
        rows=rows,
        summary=summary,
        paper=PAPER,
    )
