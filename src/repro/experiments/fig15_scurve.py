"""Figure 15 — S-curve of per-application speedups under every design.

Speedups of all 28 applications sorted ascending per design (each design's
curve is sorted independently, as in the paper's figure).  The claim being
reproduced: Sh40+C10+Boost lifts the head of the curve (replication-
sensitive wins) while pushing its tail toward 1.0 — no application is left
far below baseline — whereas Sh40's tail collapses.

Rows: one per rank position (the actual S-curves, one column per design),
followed by summary rows naming each curve's tail and head applications.
"""

from __future__ import annotations

import statistics

from repro.analysis.metrics import s_curve
from repro.experiments.base import BASELINE, PROPOSED_DESIGNS, ExperimentReport, Runner
from repro.workloads.suite import all_apps

PAPER = {
    # Qualitative: the boosted design's tail is far above Sh40's.
    "boost_tail_above_sh40_tail": 1.0,
}


def run(runner: Runner) -> ExperimentReport:
    runner.run_many([
        (prof, spec)
        for prof in all_apps()
        for spec in (BASELINE, *PROPOSED_DESIGNS)
    ])
    curves = {}
    for spec in PROPOSED_DESIGNS:
        speedups = {}
        for prof in all_apps():
            base = runner.run(prof, BASELINE)
            speedups[prof.name] = runner.run(prof, spec).speedup_vs(base)
        curves[spec.label] = s_curve(speedups)

    labels = [spec.label for spec in PROPOSED_DESIGNS]
    rows = []
    num_apps = len(next(iter(curves.values())))
    for rank in range(num_apps):
        row = {"rank": rank}
        for label in labels:
            row[label] = curves[label][rank][1]
        rows.append(row)

    summary = {}
    for label in labels:
        values = [v for _n, v in curves[label]]
        summary[f"{label}_tail"] = values[0]
        summary[f"{label}_median"] = statistics.median(values)
        summary[f"{label}_head"] = values[-1]
    sh40_tail = summary["Sh40_tail"]
    boost_label = PROPOSED_DESIGNS[-1].label
    boost_tail = summary[f"{boost_label}_tail"]
    summary["boost_tail_above_sh40_tail"] = float(boost_tail > sh40_tail)

    return ExperimentReport(
        experiment="fig15",
        title="Speedup S-curves (per-rank rows; each design sorted independently)",
        columns=["rank"] + labels,
        rows=rows,
        summary=summary,
        paper=PAPER,
    )
