"""Figure 19 — sensitivity studies: CDXBar comparison and L1 latency sweep.

(a) The hierarchical two-stage crossbar (CDXBar) with private per-core
L1s, optionally frequency-boosted in its first stage (+2xNoC1) or both
stages (+2xNoC), versus Sh40+C10+Boost.  Paper: CDXBar loses 7%/14%
(insensitive/sensitive); only boosting both stages helps (+29% sensitive)
— still 26 points below Sh40+C10+Boost, because CDXBar does nothing about
replication.

(b) Sh40+C10+Boost under L1/DC-L1 access latencies from 0 to 64 cycles,
each normalized to a baseline with the same latency.  Paper: +66% for the
replication-sensitive apps even at zero latency — the benefit is
capacity/bandwidth, not latency.
"""

from __future__ import annotations

from repro.analysis.metrics import geomean
from repro.core.designs import DesignSpec
from repro.experiments.base import BASELINE, ExperimentReport, Runner
from repro.workloads.suite import REPLICATION_SENSITIVE, replication_insensitive_apps

PAPER = {
    "cdxbar_sensitive": 0.86,
    "cdxbar_2xnoc_sensitive": 1.29,
    "boost_sensitive": 1.75,
    "zero_latency_sensitive": 1.66,
}

BOOST = DesignSpec.clustered(40, 10, boost=2.0)
CDX_VARIANTS = (
    DesignSpec.cdxbar(),
    DesignSpec.cdxbar(noc1_freq_mult=2.0),
    DesignSpec.cdxbar(noc1_freq_mult=2.0, noc2_freq_mult=2.0),
)
LATENCIES = (0.0, 28.0, 64.0)


def run(runner: Runner) -> ExperimentReport:
    insensitive = [p.name for p in replication_insensitive_apps()]
    rows = []
    summary = {}

    def group_speedup(spec: DesignSpec, names, **kwargs) -> float:
        vals = []
        for n in names:
            base = runner.run(n, BASELINE, **kwargs)
            vals.append(runner.run(n, spec, **kwargs).speedup_vs(base))
        return geomean(vals)

    for spec in CDX_VARIANTS + (BOOST,):
        sens = group_speedup(spec, REPLICATION_SENSITIVE)
        insens = group_speedup(spec, insensitive)
        rows.append({"config": spec.label, "sensitive": sens, "insensitive": insens})
    summary["cdxbar_sensitive"] = rows[0]["sensitive"]
    summary["cdxbar_2xnoc_sensitive"] = rows[2]["sensitive"]
    summary["boost_sensitive"] = rows[3]["sensitive"]

    for lat in LATENCIES:
        sens = group_speedup(BOOST, REPLICATION_SENSITIVE, l1_latency_override=lat)
        rows.append(
            {"config": f"{BOOST.label} @L1lat={lat:g}", "sensitive": sens,
             "insensitive": float("nan")}
        )
        if lat == 0.0:
            summary["zero_latency_sensitive"] = sens
    return ExperimentReport(
        experiment="fig19",
        title="(a) CDXBar variants vs Sh40+C10+Boost; (b) L1-latency sweep",
        columns=["config", "sensitive", "insensitive"],
        rows=rows,
        summary=summary,
        paper=PAPER,
    )
