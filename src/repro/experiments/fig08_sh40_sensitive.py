"""Figure 8 — fully shared Sh40 on the replication-sensitive applications.

Per-application DC-L1 miss rate and IPC under Sh40, normalized to the
private-L1 baseline.

Paper: miss rate drops 89% on average (min 27%, max 99%); IPC improves
48% on average (up to 2.9x for T-AlexNet).  P-2MM gains only ~6%
(partition camping) and P-3DCONV loses ~3% (peak-bandwidth sensitivity).
"""

from __future__ import annotations

from repro.analysis.metrics import amean, geomean
from repro.core.designs import DesignSpec
from repro.experiments.base import BASELINE, ExperimentReport, Runner
from repro.workloads.suite import REPLICATION_SENSITIVE

PAPER = {
    "mean_miss_reduction": 0.89,
    "mean_speedup": 1.48,
    "t_alexnet_speedup": 2.9,
    "p_2mm_speedup": 1.06,
    "p_3dconv_speedup": 0.97,
}

SH40 = DesignSpec.shared(40)


def run(runner: Runner) -> ExperimentReport:
    runner.run_many([
        (name, spec)
        for name in REPLICATION_SENSITIVE
        for spec in (BASELINE, SH40)
    ])
    rows = []
    for name in REPLICATION_SENSITIVE:
        base = runner.run(name, BASELINE)
        sh = runner.run(name, SH40)
        rows.append(
            {
                "app": name,
                "miss_rate_norm": sh.miss_rate_vs(base),
                "miss_reduction": 1.0 - sh.miss_rate_vs(base),
                "speedup": sh.speedup_vs(base),
            }
        )
    by_app = {r["app"]: r for r in rows}
    return ExperimentReport(
        experiment="fig08",
        title="Sh40 on replication-sensitive apps (normalized to baseline)",
        columns=["app", "miss_rate_norm", "miss_reduction", "speedup"],
        rows=rows,
        summary={
            "mean_miss_reduction": amean(r["miss_reduction"] for r in rows),
            "mean_speedup": geomean(r["speedup"] for r in rows),
            "t_alexnet_speedup": by_app["T-AlexNet"]["speedup"],
            "p_2mm_speedup": by_app["P-2MM"]["speedup"],
            "p_3dconv_speedup": by_app["P-3DCONV"]["speedup"],
        },
        paper=PAPER,
    )
