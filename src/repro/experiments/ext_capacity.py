"""Extension study — larger DC-L1s and boosted NoC#2 (Section VIII-A's
closing remark: "our proposed designs are expected to improve performance
with larger DC-L1s or boosted NoC resources").

Three extension axes on top of Sh40+C10+Boost, evaluated on the
replication-sensitive applications:

* **capacity** — 2x / 4x total DC-L1 capacity (per-node size scales; the
  access-latency model charges the extra cycles per doubling);
* **NoC#2 boost** — doubling the per-range Z x O crossbars' clock too
  (they are small enough per the frequency model, unlike the baseline's
  80x32);
* **both** — the combined headroom.

The paper does not quantify these; the expectation we verify is monotone
improvement, with capacity helping most for the apps whose footprints
exceed the per-cluster capacity (S-Reduction, P-SYRK).
"""

from __future__ import annotations

import dataclasses

from repro.analysis.metrics import geomean
from repro.core.designs import DesignSpec
from repro.experiments.base import BASELINE, ExperimentReport, Runner
from repro.noc.dsent import DsentModel
from repro.workloads.suite import REPLICATION_SENSITIVE

PAPER = {
    # Qualitative: bigger DC-L1s / faster NoC#2 should not hurt.
    "capacity_monotone": 1.0,
}

BOOST = DesignSpec.clustered(40, 10, boost=2.0)
BIG_FOOTPRINT_APPS = ("S-Reduction", "P-SYRK")


def _with(spec: DesignSpec, label: str, **changes) -> DesignSpec:
    return dataclasses.replace(spec, label=label, **changes)


VARIANTS = (
    BOOST,
    _with(BOOST, "Sh40+C10+Boost+2xL1", l1_size_mult=2.0),
    _with(BOOST, "Sh40+C10+Boost+4xL1", l1_size_mult=4.0),
    _with(BOOST, "Sh40+C10+Boost+2xNoC2", noc2_freq_mult=2.0),
    _with(BOOST, "Sh40+C10+Boost+2xL1+2xNoC2", l1_size_mult=2.0, noc2_freq_mult=2.0),
)


def run(runner: Runner) -> ExperimentReport:
    rows = []
    summary = {}
    speedups = {}
    for spec in VARIANTS:
        vals, big = [], []
        for name in REPLICATION_SENSITIVE:
            base = runner.run(name, BASELINE)
            sp = runner.run(name, spec).speedup_vs(base)
            vals.append(sp)
            if name in BIG_FOOTPRINT_APPS:
                big.append(sp)
        sp_all, sp_big = geomean(vals), geomean(big)
        speedups[spec.label] = sp_all
        rows.append(
            {"config": spec.label, "sensitive": sp_all, "big_footprint": sp_big}
        )
    base_label = BOOST.label
    summary["boost"] = speedups[base_label]
    summary["boost_2xl1"] = speedups["Sh40+C10+Boost+2xL1"]
    summary["boost_4xl1"] = speedups["Sh40+C10+Boost+4xL1"]
    summary["boost_2xnoc2"] = speedups["Sh40+C10+Boost+2xNoC2"]
    summary["boost_combined"] = speedups["Sh40+C10+Boost+2xL1+2xNoC2"]
    summary["capacity_monotone"] = float(
        summary["boost_4xl1"] >= summary["boost_2xl1"] - 0.02
        and summary["boost_2xl1"] >= summary["boost"] - 0.02
    )
    # The 10x8 NoC#2 crossbars really can clock 2x 700 MHz.
    summary["noc2_boost_feasible"] = float(DsentModel.supports_frequency(10, 8, 1.4))
    return ExperimentReport(
        experiment="ext-capacity",
        title="Extensions: larger DC-L1s and boosted NoC#2 on Sh40+C10+Boost",
        columns=["config", "sensitive", "big_footprint"],
        rows=rows,
        summary=summary,
        paper=PAPER,
    )
