"""Figure 13 — poor performers under clustering, and crossbar frequencies.

(a) The five poor-performing replication-insensitive applications under
Sh40, Sh40+C10 and Sh40+C10+Boost, normalized to the baseline.  Paper:
clustering relieves the camping victims (C-RAY, P-3MM, P-GEMM) and the
frequency boost lifts all five (P-2DCONV most — it is peak-bandwidth-
sensitive), though some loss can remain.

(b) Maximum operating frequency of the crossbars each design uses
(DSENT-like model).  Paper: the 80x32 / 80x40 crossbars cannot reach
2x the 700 MHz baseline NoC clock, while the small 2x1 / 8x4 crossbars
clock far higher — the headroom the +Boost design exploits.
"""

from __future__ import annotations

from repro.core.designs import DesignSpec
from repro.experiments.base import BASELINE, ExperimentReport, Runner
from repro.noc.dsent import DsentModel
from repro.workloads.suite import POOR_PERFORMING

PAPER = {
    "baseline_noc_ghz": 0.7,
    "boosted_noc_ghz": 1.4,
    "xbar_80x32_supports_2x": 0.0,
    "xbar_8x4_supports_2x": 1.0,
}

DESIGNS = (
    DesignSpec.shared(40),
    DesignSpec.clustered(40, 10),
    DesignSpec.clustered(40, 10, boost=2.0),
)

XBAR_SHAPES = ((80, 32), (80, 40), (40, 32), (16, 8), (10, 8), (8, 4), (4, 2), (2, 1))


def run(runner: Runner) -> ExperimentReport:
    runner.run_many([
        (name, spec)
        for name in POOR_PERFORMING
        for spec in (BASELINE, *DESIGNS)
    ])
    rows = []
    for name in POOR_PERFORMING:
        base = runner.run(name, BASELINE)
        row = {"app": name}
        for spec in DESIGNS:
            row[spec.label] = runner.run(name, spec).speedup_vs(base)
        rows.append(row)

    freq_rows = []
    for n_in, n_out in XBAR_SHAPES:
        ghz = DsentModel.max_frequency_ghz(n_in, n_out)
        freq_rows.append(
            {
                "app": f"xbar {n_in}x{n_out}",
                "Sh40": ghz,
                "Sh40+C10": float(ghz >= PAPER["baseline_noc_ghz"]),
                "Sh40+C10+Boost": float(ghz >= PAPER["boosted_noc_ghz"]),
            }
        )

    boost_label = DESIGNS[2].label
    return ExperimentReport(
        experiment="fig13",
        title=(
            "(a) Poor performers under Sh40 / +C10 / +Boost; "
            "(b) crossbar max GHz (columns reused: value / supports 700MHz / supports 1.4GHz)"
        ),
        columns=["app", "Sh40", "Sh40+C10", "Sh40+C10+Boost"],
        rows=rows + freq_rows,
        summary={
            "poor_mean_boost_speedup": (
                sum(r[boost_label] for r in rows) / len(rows)
            ),
            "xbar_80x32_supports_2x": float(
                DsentModel.supports_frequency(80, 32, PAPER["boosted_noc_ghz"])
            ),
            "xbar_8x4_supports_2x": float(
                DsentModel.supports_frequency(8, 4, PAPER["boosted_noc_ghz"])
            ),
        },
        paper=PAPER,
    )
