"""Section VIII — latency analysis of Sh40+C10+Boost.

The decoupled design adds a core↔DC-L1 communication overhead (the paper
estimates ~54 cycles on average) and +2 cycles of access latency for the
doubled DC-L1 size — yet the mean round trip to fetch data *falls*
because the far higher DC-L1 hit rates avoid L2/memory trips.

Paper: ~54-cycle communication overhead; DC-L1 access latency 30 vs 28
cycles; overall round-trip time reduced by 53% on the evaluated apps.
"""

from __future__ import annotations

from repro.analysis.metrics import amean
from repro.core.designs import DesignSpec
from repro.experiments.base import BASELINE, ExperimentReport, Runner
from repro.workloads.suite import REPLICATION_SENSITIVE, all_apps

PAPER = {
    "dcl1_latency": 30.0,
    "baseline_l1_latency": 28.0,
    "rtt_reduction_sensitive": 0.53,
}

BOOST = DesignSpec.clustered(40, 10, boost=2.0)


def run(runner: Runner) -> ExperimentReport:
    gpu = runner.config.gpu
    rows = []
    for prof in all_apps():
        base = runner.run(prof, BASELINE)
        res = runner.run(prof, BOOST)
        rows.append(
            {
                "app": prof.name,
                "baseline_rtt": base.load_rtt_mean,
                "boost_rtt": res.load_rtt_mean,
                "rtt_norm": (
                    res.load_rtt_mean / base.load_rtt_mean
                    if base.load_rtt_mean
                    else 1.0
                ),
                "sensitive": prof.name in REPLICATION_SENSITIVE,
            }
        )
    sens = [r for r in rows if r["sensitive"]]
    dcl1_size = gpu.dcl1_size_bytes(BOOST.num_dcl1)
    return ExperimentReport(
        experiment="latency",
        title="Round-trip latency under Sh40+C10+Boost vs baseline",
        columns=["app", "baseline_rtt", "boost_rtt", "rtt_norm", "sensitive"],
        rows=rows,
        summary={
            "dcl1_latency": gpu.l1_level_latency(dcl1_size),
            "baseline_l1_latency": gpu.l1_latency,
            "rtt_reduction_sensitive": 1.0 - amean(r["rtt_norm"] for r in sens),
            "rtt_reduction_all": 1.0 - amean(r["rtt_norm"] for r in rows),
        },
        paper=PAPER,
    )
