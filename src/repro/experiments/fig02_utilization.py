"""Figure 2 — baseline L1 data-port and NoC reply-link utilization.

Per application (private-L1 baseline): the maximum L1 data-port
utilization across all 80 L1s, and the maximum utilization of the NoC
links that deliver L2 replies to the cores.  Both are presented ascending
(the figure's S-curve layout).

Paper: the highest L1 data-port utilization across all applications is
18%, and the highest core-side reply-link utilization is 30% — the
motivating under-utilization of the tightly-coupled L1s.
"""

from __future__ import annotations

from repro.experiments.base import BASELINE, ExperimentReport, Runner
from repro.workloads.suite import all_apps

PAPER = {
    "max_l1_port_utilization": 0.18,
    "max_reply_link_utilization": 0.30,
}


def run(runner: Runner) -> ExperimentReport:
    runner.run_many([(prof, BASELINE) for prof in all_apps()])
    rows = []
    for prof in all_apps():
        res = runner.run(prof, BASELINE)
        rows.append(
            {
                "app": prof.name,
                "l1_port_util_max": res.l1_port_util_max,
                "reply_link_util_max": res.core_reply_link_util_max,
            }
        )
    rows.sort(key=lambda r: r["l1_port_util_max"])
    return ExperimentReport(
        experiment="fig02",
        title="Baseline L1 data-port & core reply-link utilization (ascending)",
        columns=["app", "l1_port_util_max", "reply_link_util_max"],
        rows=rows,
        summary={
            "max_l1_port_utilization": max(r["l1_port_util_max"] for r in rows),
            "max_reply_link_utilization": max(r["reply_link_util_max"] for r in rows),
        },
        paper=PAPER,
    )
