"""Extension study — finite DC-L1 node queues (Figure 3's Q1 depth).

The paper sizes each DC-L1 node queue at four 128 B entries and costs
their area (6.25% of the L1 budget, Figure 18b), but the performance
evaluation leaves queue depth implicit.  This study turns on credit-based
Q1 backpressure and sweeps the depth on two workload classes:

* a *camping* application (P-2MM): finite queues sharpen the hotspot —
  requests for the camped homes now stall the cores instead of piling up
  in the (previously infinite) queue model;
* a well-behaved replication-sensitive application (T-AlexNet): modest
  depths should recover the infinite-queue performance.

Mapping note: the paper's node holds *four* queues of four entries
(16 entries of buffering per node); our credit model gates everything on
a single Q1 pool whose slots are held through NoC delivery and bank
service, so a pool of ~8 is the fair stand-in for the paper's provisioning
— and is indeed where performance converges to the infinite-queue model.
"""

from __future__ import annotations

from repro.core.designs import DesignSpec
from repro.experiments.base import BASELINE, ExperimentReport, Runner

PAPER = {
    # Qualitative: the paper-equivalent buffering behaves like infinite
    # queues off the camping pathologies; depth 1 visibly throttles.
    "depth8_close_to_infinite": 1.0,
}

BOOST = DesignSpec.clustered(40, 10, boost=2.0)
SH40 = DesignSpec.shared(40)
DEPTHS = (1, 2, 4, 8)


def run(runner: Runner) -> ExperimentReport:
    rows = []
    summary = {}
    for app, spec, tag in (("T-AlexNet", BOOST, "alexnet_boost"),
                           ("P-2MM", SH40, "p2mm_sh40")):
        base = runner.run(app, BASELINE)
        infinite = runner.run(app, spec)
        sp_inf = infinite.speedup_vs(base)
        rows.append({
            "config": f"{app} / {spec.label} / Q=inf",
            "speedup": sp_inf,
            "queue_stalls": infinite.node_queue_stalls,
        })
        summary[f"{tag}_inf"] = sp_inf
        for depth in DEPTHS:
            res = runner.run(app, spec, overrides={"dcl1_queue_depth": depth})
            sp = res.speedup_vs(base)
            rows.append({
                "config": f"{app} / {spec.label} / Q={depth}",
                "speedup": sp,
                "queue_stalls": res.node_queue_stalls,
            })
            summary[f"{tag}_q{depth}"] = sp
    summary["depth8_close_to_infinite"] = float(
        summary["alexnet_boost_q8"] >= 0.9 * summary["alexnet_boost_inf"]
    )
    depths = [summary[f"alexnet_boost_q{d}"] for d in DEPTHS]
    summary["monotone_in_depth"] = float(
        all(b >= a - 0.02 for a, b in zip(depths, depths[1:]))
    )
    summary["depth1_throttles_camping"] = float(
        summary["p2mm_sh40_q1"] <= summary["p2mm_sh40_inf"] + 0.02
    )
    return ExperimentReport(
        experiment="ext-queues",
        title="Finite DC-L1 node queue (Q1) depth sweep",
        columns=["config", "speedup", "queue_stalls"],
        rows=rows,
        summary=summary,
        paper=PAPER,
    )
