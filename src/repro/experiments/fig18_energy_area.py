"""Figure 18 — NoC power breakdown and area accounting of Sh40+C10+Boost.

(a) Static, dynamic and total NoC power of Sh40+C10+Boost normalized to
the baseline, aggregated over all applications, plus the resulting energy
and efficiency metrics.  The dynamic-energy scale is calibrated on the
measured baseline runs (see :mod:`repro.power.energy`).

(b) L1-level area: the DC-L1 node queues cost ~6.25% of the baseline L1
capacity, more than offset by ~8% savings from aggregating into half as
many banks; the NoC shrinks by ~50%.

Paper: static -16%, dynamic +20%, total -2%; energy -35%; perf/W +29.5%;
perf/energy +95%; queue overhead 6.25%; cache-area saving 8%.
"""

from __future__ import annotations

from repro.analysis.metrics import amean, geomean
from repro.core.designs import DesignSpec
from repro.experiments.base import BASELINE, ExperimentReport, Runner
from repro.noc.dsent import DsentModel, design_inventory
from repro.power.cacti import l1_level_area_report
from repro.power.energy import EnergyModel
from repro.workloads.suite import all_apps

PAPER = {
    "static_norm": 0.84,
    "dynamic_norm": 1.20,
    "total_norm": 0.98,
    "energy_norm": 0.65,
    "perf_per_watt_gain": 1.295,
    "perf_per_energy_gain": 1.95,
    "queue_overhead": 0.0625,
    "cache_area_saving": 0.08,
    "noc_area_norm": 0.50,
}

BOOST = DesignSpec.clustered(40, 10, boost=2.0)


def run(runner: Runner) -> ExperimentReport:
    gpu = runner.config.gpu
    model = EnergyModel(gpu.num_cores, gpu.num_l2_slices)

    # Calibrate the dynamic scale on the mean baseline traffic intensity.
    base_results = [runner.run(p, BASELINE) for p in all_apps()]
    ref = max(base_results, key=lambda r: r.total_flit_hops / max(r.cycles, 1))
    model.calibrate_dyn_scale(ref, BASELINE)

    rows = []
    statics, dynamics, totals, energies, ppw, ppe = [], [], [], [], [], []
    for prof, base in zip(all_apps(), base_results):
        res = runner.run(prof, BOOST)
        b_base = model.breakdown(base, BASELINE)
        b_new = model.breakdown(res, BOOST)
        norm = b_new.normalized_to(b_base)
        rows.append({"app": prof.name, **{k: v for k, v in norm.items() if k != "design"}})
        statics.append(norm["static"])
        dynamics.append(norm["dynamic"])
        totals.append(norm["total"])
        energies.append(norm["energy"])
        ppw.append(model.perf_per_watt(res, BOOST) / model.perf_per_watt(base, BASELINE))
        ppe.append(
            model.perf_per_energy(res, BOOST) / model.perf_per_energy(base, BASELINE)
        )

    area = l1_level_area_report(
        gpu.total_l1_bytes, gpu.num_cores, BOOST.num_dcl1
    )
    base_inv = design_inventory(BASELINE, gpu.num_cores, gpu.num_l2_slices)
    boost_inv = design_inventory(BOOST, gpu.num_cores, gpu.num_l2_slices)
    noc_area_norm = DsentModel.area_units(boost_inv) / DsentModel.area_units(base_inv)

    return ExperimentReport(
        experiment="fig18",
        title="NoC power breakdown and area of Sh40+C10+Boost (normalized)",
        columns=["app", "static", "dynamic", "total", "energy"],
        rows=rows,
        summary={
            "static_norm": amean(statics),
            "dynamic_norm": amean(dynamics),
            "total_norm": amean(totals),
            "energy_norm": geomean(energies),
            "perf_per_watt_gain": geomean(ppw),
            "perf_per_energy_gain": geomean(ppe),
            "queue_overhead": area["queue_overhead_fraction"],
            "cache_area_saving": area["cache_savings_fraction"],
            "noc_area_norm": noc_area_norm,
        },
        paper=PAPER,
    )
