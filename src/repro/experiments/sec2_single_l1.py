"""Section II-A — the hypothetical single shared L1.

All 80 cores access one L1 holding the total L1 capacity with aggregate
bandwidth preserved: the paper's upper bound on what eliminating
replication can buy.  Evaluated on the replication-sensitive applications.

Paper: L1 miss rate drops by 89.5% on average (99% for the three Tango
networks), translating to a 2.9x average IPC improvement.
"""

from __future__ import annotations

from repro.analysis.metrics import amean, geomean
from repro.core.designs import DesignSpec
from repro.experiments.base import BASELINE, ExperimentReport, Runner
from repro.workloads.suite import REPLICATION_SENSITIVE

PAPER = {
    "mean_miss_rate_reduction": 0.895,
    "tango_miss_rate_reduction": 0.99,
    "mean_speedup": 2.9,
}

SINGLE = DesignSpec.single_l1()


def run(runner: Runner) -> ExperimentReport:
    rows = []
    for name in REPLICATION_SENSITIVE:
        base = runner.run(name, BASELINE)
        single = runner.run(name, SINGLE)
        reduction = 1.0 - (
            single.l1_miss_rate / base.l1_miss_rate if base.l1_miss_rate else 1.0
        )
        rows.append(
            {
                "app": name,
                "baseline_miss": base.l1_miss_rate,
                "single_l1_miss": single.l1_miss_rate,
                "miss_reduction": reduction,
                "speedup": single.speedup_vs(base),
            }
        )
    tango = [r["miss_reduction"] for r in rows if r["app"].startswith("T-")]
    return ExperimentReport(
        experiment="sec2c",
        title="Hypothetical single shared L1 (replication-sensitive apps)",
        columns=["app", "baseline_miss", "single_l1_miss", "miss_reduction", "speedup"],
        rows=rows,
        summary={
            "mean_miss_rate_reduction": amean(r["miss_reduction"] for r in rows),
            "tango_miss_rate_reduction": amean(tango),
            "mean_speedup": geomean(r["speedup"] for r in rows),
        },
        paper=PAPER,
    )
