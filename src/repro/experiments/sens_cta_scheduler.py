"""Section VIII-A — CTA scheduler sensitivity.

Sh40+C10+Boost under the default round-robin CTA scheduler versus a
locality-aware distributed scheduler that maps nearby CTAs to the same
core.  The distributed scheduler converts some inter-core sharing into
intra-core reuse, shrinking the replication the DC-L1 designs remove.

Paper: the improvement on replication-sensitive apps drops from 75% to
46% — reduced, not eliminated.
"""

from __future__ import annotations

from repro.analysis.metrics import geomean
from repro.core.designs import DesignSpec
from repro.experiments.base import BASELINE, ExperimentReport, Runner
from repro.workloads.suite import REPLICATION_SENSITIVE

PAPER = {
    "round_robin_speedup": 1.75,
    "distributed_speedup": 1.46,
}

BOOST = DesignSpec.clustered(40, 10, boost=2.0)


def run(runner: Runner) -> ExperimentReport:
    runner.run_many([
        (name, spec, {"scheduler": sched})
        for sched in ("round_robin", "distributed")
        for name in REPLICATION_SENSITIVE
        for spec in (BASELINE, BOOST)
    ])
    rows = []
    for sched in ("round_robin", "distributed"):
        speedups, repl = [], []
        for name in REPLICATION_SENSITIVE:
            base = runner.run(name, BASELINE, scheduler=sched)
            res = runner.run(name, BOOST, scheduler=sched)
            speedups.append(res.speedup_vs(base))
            repl.append(base.replication_ratio)
        rows.append(
            {
                "scheduler": sched,
                "speedup": geomean(speedups),
                "baseline_replication": sum(repl) / len(repl),
            }
        )
    return ExperimentReport(
        experiment="sens-cta",
        title="Sh40+C10+Boost under round-robin vs distributed CTA scheduling",
        columns=["scheduler", "speedup", "baseline_replication"],
        rows=rows,
        summary={
            "round_robin_speedup": rows[0]["speedup"],
            "distributed_speedup": rows[1]["speedup"],
        },
        paper=PAPER,
    )
