"""EXPERIMENTS.md generation.

Every benchmark persists its rendered table to
``benchmarks/results/<experiment>.txt`` including two machine-parseable
footer lines::

    measured: key=value, key=value, ...
    paper:    key=value, ...

:func:`build_experiments_md` reads those files and produces the
paper-vs-measured record (EXPERIMENTS.md) — so the document is always
regenerated from actual runs, never hand-copied.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Optional, Tuple

#: Paper artifact + one-line description per experiment id, in paper order.
EXPERIMENT_INDEX: List[Tuple[str, str, str]] = [
    ("fig01", "Figure 1", "Replication ratio, L1 miss rate, 16x-L1 speedup per app"),
    ("fig02", "Figure 2", "Baseline L1 data-port & reply-link utilization"),
    ("sec2c", "Section II-A", "Hypothetical single shared L1"),
    ("tab1", "Table I", "NoC shapes + peak L1 bandwidth of PrY"),
    ("fig04", "Figure 4", "Private DC-L1 aggregation sweep (+ perfect L1s)"),
    ("fig06", "Figure 6", "NoC area / static power of PrY"),
    ("fig08", "Figure 8", "Sh40 on replication-sensitive apps"),
    ("fig09", "Figure 9", "Sh40 on replication-insensitive apps"),
    ("fig11", "Figure 11", "Cluster-count sweep C1..C40"),
    ("fig12", "Figure 12", "NoC area / static power vs cluster count"),
    ("fig13", "Figure 13", "Poor performers + crossbar max frequencies"),
    ("fig14", "Figure 14", "Overall IPC of all proposed designs"),
    ("fig15", "Figure 15", "Speedup S-curves"),
    ("fig16", "Figure 16", "Miss-rate reduction + replica counts"),
    ("fig17", "Figure 17", "DC-L1 data-port utilization"),
    ("fig18", "Figure 18", "NoC power breakdown + area accounting"),
    ("fig19", "Figure 19", "CDXBar comparison + L1-latency sweep"),
    ("sens-cta", "Sec VIII-A", "CTA-scheduler sensitivity"),
    ("sens-size", "Sec VIII-A", "120-core system scaling"),
    ("sens-base", "Sec VIII-A", "Boosted baselines"),
    ("latency", "Sec VIII", "Latency analysis (round trips)"),
    ("ablations", "(extension)", "Design-choice ablations"),
    ("ext-bypass", "(extension)", "Streaming-bypass fills composed with DC-L1s"),
    ("ext-capacity", "(extension)", "Larger DC-L1s / boosted NoC#2"),
    ("ext-latency-dist", "(extension)", "Load-latency percentiles"),
    ("ext-queues", "(extension)", "Finite DC-L1 node queue depth"),
    ("robustness", "(extension)", "Trace-seed robustness"),
]

_PREAMBLE = """# EXPERIMENTS — paper vs measured

Auto-generated from the persisted benchmark outputs
(`benchmarks/results/*.txt`) by `repro.experiments.reporting`; regenerate
with `python -m repro.experiments.reporting` after
`pytest benchmarks/ --benchmark-only`.

All simulations use the calibrated workload scale (`REPRO_SCALE=1.0`).
We reproduce *shapes* — who wins, rough factors, crossovers — not the
authors' absolute numbers: the substrate here is a reservation-based
timing model over synthetic traces, not GPGPU-Sim over CUDA binaries
(see DESIGN.md for the substitution table).  `paper` cells are blank for
quantities the paper reports only qualitatively.

Known deviations (stable across runs, all direction-preserving):

* **sec2c / fig08 magnitudes** — our single-L1 / Sh40 speedups top out
  lower than the paper's 2.9x because our baseline is bounded by DRAM
  bandwidth a bit earlier than the authors' testbed.
* **S-Reduction / P-SYRK under Sh40+C10** — the paper reports these two
  as near-neutral or negative (their footprints exceed a cluster's
  reach); we reproduce the Sh40 >> Sh40+C10 ordering but both stay mildly
  positive here.
* **fig16 baseline replica counts** — higher than the paper's 7.7
  (our shared footprints are small relative to 80 caches, so more copies
  fit); the Pr40 > Boost > Sh40 ordering and the ~2.8 Boost value match.
* **sens-cta magnitude** — the distributed scheduler cuts the benefit
  (direction reproduced) but by less than the paper's 75%->46%; our
  inter-CTA locality knob is conservative to avoid disturbing Figure 1.
* **fig09 R-SC** — improves *relative to the poor performers* but does
  not exceed 1.0 outright as in the paper.
"""


def parse_summary_lines(text: str) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Extract the measured/paper key=value footers from a results file."""
    measured: Dict[str, float] = {}
    paper: Dict[str, float] = {}
    for line in text.splitlines():
        stripped = line.strip()
        for prefix, target in (("measured:", measured), ("paper:", paper)):
            if stripped.startswith(prefix):
                body = stripped[len(prefix):]
                for item in body.split(","):
                    if "=" not in item:
                        continue
                    key, _, value = item.partition("=")
                    try:
                        target[key.strip()] = float(value)
                    except ValueError:
                        continue
    return measured, paper


def _experiment_section(exp_id: str, artifact: str, description: str,
                        text: Optional[str]) -> str:
    lines = [f"## {artifact} — {description}", ""]
    if text is None:
        lines.append("*(no benchmark output found — run the benches first)*")
        lines.append("")
        return "\n".join(lines)
    measured, paper = parse_summary_lines(text)
    if not measured:
        lines.append("*(no summary footer in the results file)*")
        lines.append("")
        return "\n".join(lines)
    lines.append("| metric | paper | measured |")
    lines.append("|---|---|---|")
    for key, value in measured.items():
        pv = paper.get(key)
        pcell = f"{pv:.3f}" if pv is not None else ""
        lines.append(f"| {key} | {pcell} | {value:.3f} |")
    extra_paper = [k for k in paper if k not in measured]
    for key in extra_paper:
        lines.append(f"| {key} | {paper[key]:.3f} | |")
    lines.append("")
    lines.append(f"Full rows: `benchmarks/results/{exp_id}.txt`")
    lines.append("")
    return "\n".join(lines)


def _headline(results_dir: pathlib.Path) -> str:
    """The paper's abstract-level claims, paper-vs-measured."""
    rows = []

    def grab(exp_id: str, key: str):
        path = results_dir / f"{exp_id}.txt"
        if not path.exists():
            return None, None
        measured, paper = parse_summary_lines(path.read_text())
        return measured.get(key), paper.get(key)

    claims = [
        ("fig14", "sensitive_Sh40+C10+Boost",
         "IPC on replication-sensitive apps (Sh40+C10+Boost)"),
        ("fig14", "insensitive_Sh40+C10+Boost",
         "IPC on replication-insensitive apps"),
        ("fig14", "all_Sh40+C10+Boost", "IPC over all 28 apps"),
        ("fig12", "c10_area", "NoC area (Sh40+C10)"),
        ("fig18", "energy_norm", "NoC energy"),
        ("fig16", "Sh40+C10+Boost_replicas", "replicas per line (vs Sh40's 1)"),
    ]
    for exp_id, key, label in claims:
        m, p = grab(exp_id, key)
        if m is None:
            continue
        pcell = f"{p:.2f}" if p is not None else ""
        rows.append(f"| {label} | {pcell} | {m:.2f} |")
    if not rows:
        return ""
    return "\n".join(
        ["## Headline", "", "| claim | paper | measured |", "|---|---|---|"]
        + rows + [""]
    )


def build_experiments_md(results_dir) -> str:
    """Assemble the EXPERIMENTS.md document from a results directory."""
    results_dir = pathlib.Path(results_dir)
    sections = [_PREAMBLE, _headline(results_dir)]
    for exp_id, artifact, description in EXPERIMENT_INDEX:
        path = results_dir / f"{exp_id}.txt"
        text = path.read_text() if path.exists() else None
        sections.append(_experiment_section(exp_id, artifact, description, text))
    return "\n".join(s for s in sections if s)


def main() -> int:  # pragma: no cover - thin CLI
    import sys

    root = pathlib.Path(__file__).resolve().parents[3]
    results = root / "benchmarks" / "results"
    out = root / "EXPERIMENTS.md"
    out.write_text(build_experiments_md(results))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
