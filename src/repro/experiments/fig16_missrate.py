"""Figure 16 — L1 miss rate and replica counts under every design.

DC-L1 miss rate of each proposed design normalized to the baseline
(replication-sensitive applications), plus the average replica count per
cache line, the paper's direct measure of replication.

Paper: replica counts average 7.7 (baseline), 5.7 (Pr40), 2.8
(Sh40+C10+Boost) and exactly 1 copy (zero replicas) under Sh40; miss-rate
reduction orders Sh40 > Sh40+C10 > Pr40.
"""

from __future__ import annotations

from repro.analysis.metrics import amean
from repro.experiments.base import BASELINE, PROPOSED_DESIGNS, ExperimentReport, Runner
from repro.workloads.suite import REPLICATION_SENSITIVE

PAPER = {
    "baseline_replicas": 7.7,
    "Pr40_replicas": 5.7,
    "Sh40+C10+Boost_replicas": 2.8,
    "Sh40_replicas": 1.0,
}


def run(runner: Runner) -> ExperimentReport:
    runner.run_many([
        (name, spec)
        for name in REPLICATION_SENSITIVE
        for spec in (BASELINE, *PROPOSED_DESIGNS)
    ])
    rows = []
    base_missn = []
    base_replicas = []
    for name in REPLICATION_SENSITIVE:
        base = runner.run(name, BASELINE)
        base_replicas.append(base.mean_replicas)
        row = {"app": name, "baseline_replicas": base.mean_replicas}
        for spec in PROPOSED_DESIGNS:
            res = runner.run(name, spec)
            row[f"{spec.label}_missN"] = res.miss_rate_vs(base)
            row[f"{spec.label}_replicas"] = res.mean_replicas
        rows.append(row)
        base_missn.append(1.0)

    summary = {"baseline_replicas": amean(base_replicas)}
    for spec in PROPOSED_DESIGNS:
        summary[f"{spec.label}_missN"] = amean(r[f"{spec.label}_missN"] for r in rows)
        summary[f"{spec.label}_replicas"] = amean(
            r[f"{spec.label}_replicas"] for r in rows
        )
    columns = ["app", "baseline_replicas"]
    for spec in PROPOSED_DESIGNS:
        columns += [f"{spec.label}_missN", f"{spec.label}_replicas"]
    return ExperimentReport(
        experiment="fig16",
        title="Normalized miss rate and mean replica counts (replication-sensitive apps)",
        columns=columns,
        rows=rows,
        summary=summary,
        paper=PAPER,
    )
