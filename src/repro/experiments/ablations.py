"""Ablations of the design choices DESIGN.md calls out.

Four studies, each isolating one decision the paper makes (mostly in
Section III / VI) and measuring what it is worth on the workloads where it
matters:

1. **Reply granularity** — NoC#1 read replies carry only the requested
   data (Section III) vs whole 128 B lines.  Evaluated on the
   bandwidth-sensitive apps, where wasted reply flits eat the already-
   reduced peak L1 bandwidth.
2. **Boost factor** — NoC#1 frequency 1x/1.5x/2x/3x on the replication-
   sensitive set.  2x is what the 8x4 crossbars support (Figure 13b);
   beyond it, returns should flatten as other resources bind.
3. **Home selection** — modulo interleave (our default, any M) vs explicit
   home-bit extraction (power-of-two M), checking the two are equivalent
   when both apply (M = 4 under Sh40+C10).
4. **Replacement policy** — LRU vs FIFO DC-L1s under the final design;
   block-sweep reuse favours LRU, so FIFO should cost some hit rate.
"""

from __future__ import annotations

from repro.analysis.metrics import geomean
from repro.core.designs import DesignSpec
from repro.experiments.base import BASELINE, ExperimentReport, Runner
from repro.workloads.suite import REPLICATION_SENSITIVE

PAPER = {
    # Qualitative expectations; the paper does not sweep these.
    "full_line_replies_slower": 1.0,
    "boost2_over_boost1": 1.0,
}

BANDWIDTH_APPS = ("P-2DCONV", "P-3DCONV")
C10 = DesignSpec.clustered(40, 10)
BOOST = DesignSpec.clustered(40, 10, boost=2.0)


def _group_speedup(runner: Runner, spec: DesignSpec, names, **kwargs) -> float:
    vals = []
    for n in names:
        base = runner.run(n, BASELINE)
        vals.append(runner.run(n, spec, **kwargs).speedup_vs(base))
    return geomean(vals)


def run(runner: Runner) -> ExperimentReport:
    rows = []
    summary = {}

    # 1. Reply granularity on bandwidth-sensitive apps.
    lean = _group_speedup(runner, BOOST, BANDWIDTH_APPS)
    fat = _group_speedup(
        runner, BOOST, BANDWIDTH_APPS, overrides={"full_line_noc1_replies": True}
    )
    rows.append({"study": "reply=requested-data (paper)", "speedup": lean})
    rows.append({"study": "reply=full-line", "speedup": fat})
    summary["reply_requested"] = lean
    summary["reply_full_line"] = fat
    summary["full_line_replies_slower"] = float(fat <= lean + 1e-9)

    # 2. Boost factor sweep on the replication-sensitive set.
    boost_speedups = {}
    for boost in (1.0, 1.5, 2.0, 3.0):
        spec = DesignSpec.clustered(40, 10, boost=boost)
        sp = _group_speedup(runner, spec, REPLICATION_SENSITIVE)
        boost_speedups[boost] = sp
        rows.append({"study": f"boost={boost:g}x", "speedup": sp})
        summary[f"boost_{boost:g}x"] = sp
    summary["boost2_over_boost1"] = float(boost_speedups[2.0] > boost_speedups[1.0])
    gain_12 = boost_speedups[2.0] - boost_speedups[1.0]
    gain_23 = boost_speedups[3.0] - boost_speedups[2.0]
    summary["boost_diminishing_returns"] = float(gain_23 < gain_12 + 0.02)

    # 3. Home selection strategy (M = 4 is a power of two under C10).
    camper = "P-2MM"
    interleave = runner.run(camper, C10).speedup_vs(runner.run(camper, BASELINE))
    bits = runner.run(
        camper, C10, overrides={"home_strategy": "bits"}
    ).speedup_vs(runner.run(camper, BASELINE))
    rows.append({"study": "home=interleave (P-2MM)", "speedup": interleave})
    rows.append({"study": "home=bits (P-2MM)", "speedup": bits})
    summary["home_interleave"] = interleave
    summary["home_bits"] = bits

    # 4. Replacement policy under the final design.
    lru = _group_speedup(runner, BOOST, REPLICATION_SENSITIVE)
    fifo = _group_speedup(
        runner, BOOST, REPLICATION_SENSITIVE, overrides={"l1_policy": "fifo"}
    )
    rows.append({"study": "l1=LRU (paper)", "speedup": lru})
    rows.append({"study": "l1=FIFO", "speedup": fifo})
    summary["policy_lru"] = lru
    summary["policy_fifo"] = fifo

    return ExperimentReport(
        experiment="ablations",
        title="Design-choice ablations (reply size / boost factor / home bits / policy)",
        columns=["study", "speedup"],
        rows=rows,
        summary=summary,
        paper=PAPER,
    )
