"""Figure 9 — fully shared Sh40 on the replication-insensitive applications.

Paper: most insensitive applications tolerate Sh40's latency; R-SC
*improves* (the shared organization smooths its CTA-assignment load
imbalance); five "poor-performing" applications lose 40-85%:
C-NN (latency-sensitive, high hit rate), C-RAY / P-3MM / P-GEMM
(partition camping), P-2DCONV (peak-bandwidth-sensitive).
"""

from __future__ import annotations

from repro.analysis.metrics import geomean
from repro.core.designs import DesignSpec
from repro.experiments.base import BASELINE, ExperimentReport, Runner
from repro.workloads.suite import POOR_PERFORMING, replication_insensitive_apps

PAPER = {
    "poor_min_speedup": 0.15,  # "maximum = 85%" drop
    "poor_max_speedup": 0.60,  # "minimum = 40%" drop
    "r_sc_improves": 1.0,
}

SH40 = DesignSpec.shared(40)


def run(runner: Runner) -> ExperimentReport:
    runner.run_many([
        (prof, spec)
        for prof in replication_insensitive_apps()
        for spec in (BASELINE, SH40)
    ])
    rows = []
    for prof in replication_insensitive_apps():
        base = runner.run(prof, BASELINE)
        sh = runner.run(prof, SH40)
        rows.append(
            {
                "app": prof.name,
                "speedup": sh.speedup_vs(base),
                "poor_performer": prof.name in POOR_PERFORMING,
            }
        )
    rows.sort(key=lambda r: r["speedup"])
    poor = [r["speedup"] for r in rows if r["poor_performer"]]
    r_sc = next(r["speedup"] for r in rows if r["app"] == "R-SC")
    return ExperimentReport(
        experiment="fig09",
        title="Sh40 on replication-insensitive apps (normalized to baseline)",
        columns=["app", "speedup", "poor_performer"],
        rows=rows,
        summary={
            "mean_speedup": geomean(r["speedup"] for r in rows),
            "poor_min_speedup": min(poor),
            "poor_max_speedup": max(poor),
            "r_sc_speedup": r_sc,
        },
        paper=PAPER,
    )
