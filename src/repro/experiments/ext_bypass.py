"""Extension study — streaming-bypass DC-L1 fills.

The paper's related work positions per-cache capacity management (fill
bypassing / reuse prediction) as *complementary* to the DC-L1 design:
"these works can improve performance of each individual DC-L1, while our
designs facilitate coordination across DC-L1s".  This study composes the
two: the adaptive reuse-history bypass of :mod:`repro.cache.bypass` is
enabled on top of Sh40+C10+Boost for the streaming-heavy applications (the
ones whose fills are mostly dead) and for two reuse-heavy controls.

Expectations: the filter engages (fills are bypassed) on the streaming
apps, stays quiet on reuse apps, and composition never costs meaningful
performance anywhere.
"""

from __future__ import annotations

from repro.core.designs import DesignSpec
from repro.experiments.base import BASELINE, ExperimentReport, Runner

PAPER = {
    # Qualitative: composition is safe (the complementarity claim).
    "composition_safe": 1.0,
}

BOOST = DesignSpec.clustered(40, 10, boost=2.0)
STREAMING_APPS = ("C-SCAN", "S-SPMV", "S-FFT", "C-SP")
CONTROL_APPS = ("C-BLK", "R-LUD")


def run(runner: Runner) -> ExperimentReport:
    rows = []
    summary = {}
    worst_delta = 0.0
    streaming_engaged = True
    control_quiet = True
    for app in STREAMING_APPS + CONTROL_APPS:
        base = runner.run(app, BASELINE)
        plain = runner.run(app, BOOST)
        with_bypass = runner.run(app, BOOST, overrides={"l1_bypass": True})
        sp_plain = plain.speedup_vs(base)
        sp_bypass = with_bypass.speedup_vs(base)
        delta = sp_bypass - sp_plain
        worst_delta = min(worst_delta, delta)
        fills = max(1, with_bypass.l1.misses)
        bypass_rate = with_bypass.bypassed_fills / fills
        if app in STREAMING_APPS:
            streaming_engaged = streaming_engaged and with_bypass.bypassed_fills > 0
        else:
            control_quiet = control_quiet and bypass_rate < 0.2
        rows.append(
            {
                "app": app,
                "streaming": app in STREAMING_APPS,
                "speedup_plain": sp_plain,
                "speedup_bypass": sp_bypass,
                "bypass_rate": bypass_rate,
            }
        )
    summary["worst_delta"] = worst_delta
    summary["streaming_engaged"] = float(streaming_engaged)
    summary["control_quiet"] = float(control_quiet)
    summary["composition_safe"] = float(worst_delta > -0.05)
    return ExperimentReport(
        experiment="ext-bypass",
        title="Streaming-bypass fills composed with Sh40+C10+Boost",
        columns=["app", "streaming", "speedup_plain", "speedup_bypass", "bypass_rate"],
        rows=rows,
        summary=summary,
        paper=PAPER,
    )
