"""Figure 1 — motivation: replication ratio, L1 miss rate, 16x-L1 speedup.

For every application we run the private-L1 baseline and a baseline with
16x the per-core L1 capacity (the paper's capacity-sensitivity probe; as
in the paper's hypothetical, the larger cache keeps the baseline access
latency), then apply the Section II-A classification rule.  Rows are
sorted by replication ratio ascending, matching the figure's layout.

Paper: 15 applications are capacity-sensitive with high replication; 12
satisfy all three criteria and are classified replication-sensitive
(T-AlexNet's replication ratio is 95%).
"""

from __future__ import annotations

from repro.analysis.classify import classify
from repro.experiments.base import BASELINE, ExperimentReport, Runner
from repro.core.designs import DesignSpec
from repro.workloads.suite import REPLICATION_SENSITIVE, all_apps

PAPER = {
    "num_replication_sensitive": 12,
    "t_alexnet_replication_ratio": 0.95,
}

BIG_CACHE = DesignSpec.baseline(l1_size_mult=16.0, label="Baseline16x")


def run(runner: Runner) -> ExperimentReport:
    latency = runner.config.gpu.l1_latency
    runner.run_many(
        [(prof, BASELINE) for prof in all_apps()]
        + [(prof, BIG_CACHE, {"l1_latency_override": latency})
           for prof in all_apps()]
    )
    rows = []
    sensitive_count = 0
    agreement = 0
    for prof in all_apps():
        base = runner.run(prof, BASELINE)
        big = runner.run(prof, BIG_CACHE, l1_latency_override=runner.config.gpu.l1_latency)
        row = classify(base, big)
        expected = prof.name in REPLICATION_SENSITIVE
        if row.replication_sensitive:
            sensitive_count += 1
        if row.replication_sensitive == expected:
            agreement += 1
        rows.append(
            {
                "app": row.app,
                "replication_ratio": row.replication_ratio,
                "l1_miss_rate": row.l1_miss_rate,
                "speedup_16x": row.speedup_16x,
                "sensitive": row.replication_sensitive,
                "paper_class": expected,
            }
        )
    rows.sort(key=lambda r: r["replication_ratio"])
    alexnet = next(r for r in rows if r["app"] == "T-AlexNet")
    return ExperimentReport(
        experiment="fig01",
        title="Replication ratio / L1 miss rate / IPC under 16x L1 (ascending replication)",
        columns=["app", "replication_ratio", "l1_miss_rate", "speedup_16x",
                 "sensitive", "paper_class"],
        rows=rows,
        summary={
            "num_replication_sensitive": float(sensitive_count),
            "classification_agreement": agreement / len(rows),
            "t_alexnet_replication_ratio": alexnet["replication_ratio"],
        },
        paper=PAPER,
    )
