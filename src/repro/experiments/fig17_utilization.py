"""Figure 17 — DC-L1 data-port utilization S-curves.

Maximum (DC-)L1 data-port utilization per application, per design, sorted
ascending.  Aggregating the L1 level into fewer nodes concentrates the
same demand onto fewer ports, so every DC-L1 design shows higher port
utilization than the baseline — one of the paper's two headline
inefficiency fixes.
"""

from __future__ import annotations

from repro.analysis.metrics import amean
from repro.experiments.base import BASELINE, PROPOSED_DESIGNS, ExperimentReport, Runner
from repro.workloads.suite import all_apps

PAPER = {
    # Qualitative: all proposed designs above the baseline curve.
    "all_designs_above_baseline": 1.0,
}


def run(runner: Runner) -> ExperimentReport:
    runner.run_many([
        (prof, spec)
        for prof in all_apps()
        for spec in (BASELINE, *PROPOSED_DESIGNS)
    ])
    rows = []
    for prof in all_apps():
        row = {"app": prof.name}
        row["Baseline"] = runner.run(prof, BASELINE).l1_port_util_max
        for spec in PROPOSED_DESIGNS:
            row[spec.label] = runner.run(prof, spec).l1_port_util_max
        rows.append(row)
    rows.sort(key=lambda r: r["Baseline"])

    base_mean = amean(r["Baseline"] for r in rows)
    summary = {"Baseline_mean_util": base_mean}
    above = True
    for spec in PROPOSED_DESIGNS:
        mean_util = amean(r[spec.label] for r in rows)
        summary[f"{spec.label}_mean_util"] = mean_util
        above = above and mean_util > base_mean
    summary["all_designs_above_baseline"] = float(above)

    return ExperimentReport(
        experiment="fig17",
        title="Max L1/DC-L1 data-port utilization per app (ascending baseline)",
        columns=["app", "Baseline"] + [s.label for s in PROPOSED_DESIGNS],
        rows=rows,
        summary=summary,
        paper=PAPER,
    )
