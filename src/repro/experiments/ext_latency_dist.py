"""Extension study — load-latency *distributions* under the final design.

The paper reports mean round-trip latency (53% lower under
Sh40+C10+Boost despite the added core↔DC-L1 hop).  Means hide the shape:
decoupling adds a constant ~tens of cycles to every L1 hit (the fast
path), while the much higher hit rates delete most slow L2/DRAM trips
(the tail).  This study samples per-request timelines
(:mod:`repro.sim.trace_log`) and compares p50 / p90 / p99 load latency
for a replication-sensitive app and a latency-sensitive one.

Expected shape: for the replication-sensitive app, the *body* of the
distribution collapses (the median load becomes a DC-L1 hit instead of an
L2/DRAM trip) while the p99 tail — the residual misses — still pays the
memory round trip; for the latency-sensitive app (C-NN, already ~all
hits) the median *rises* by the core↔DC-L1 hop — exactly why it is a
poor performer.
"""

from __future__ import annotations

from repro.core.designs import DesignSpec
from repro.experiments.base import BASELINE, ExperimentReport, Runner
from repro.sim.system import GPUSystem
from repro.sim.trace_log import RequestTrace

PAPER = {
    # Qualitative, from the Section VIII latency discussion.
    "body_collapses_for_sensitive": 1.0,
    "fast_path_slower_for_cnn": 1.0,
}

BOOST = DesignSpec.clustered(40, 10, boost=2.0)
APPS = ("T-AlexNet", "C-NN")
FRACTIONS = (0.5, 0.9, 0.99)


def _traced_percentiles(runner: Runner, app: str, spec: DesignSpec):
    from repro.workloads.suite import get_app

    system = GPUSystem(get_app(app), spec, runner.config)
    trace = RequestTrace.attach(system, sample_every=4)
    system.run()
    return trace.percentiles(FRACTIONS), trace.served_at_counts()


def run(runner: Runner) -> ExperimentReport:
    rows = []
    summary = {}
    stats = {}
    for app in APPS:
        for spec in (BASELINE, BOOST):
            pct, served = _traced_percentiles(runner, app, spec)
            total = max(1, sum(served.values()))
            rows.append(
                {
                    "app": app,
                    "design": spec.label,
                    "p50": pct[0.5],
                    "p90": pct[0.9],
                    "p99": pct[0.99],
                    "served_L1": served["L1"] / total,
                }
            )
            stats[(app, spec.label)] = pct
    alex_base = stats[("T-AlexNet", "Baseline")]
    alex_boost = stats[("T-AlexNet", BOOST.label)]
    cnn_base = stats[("C-NN", "Baseline")]
    cnn_boost = stats[("C-NN", BOOST.label)]
    summary["alexnet_p99_norm"] = alex_boost[0.99] / alex_base[0.99]
    summary["alexnet_p50_norm"] = alex_boost[0.5] / alex_base[0.5]
    summary["cnn_p50_norm"] = cnn_boost[0.5] / cnn_base[0.5]
    summary["body_collapses_for_sensitive"] = float(
        summary["alexnet_p50_norm"] < 0.6
    )
    summary["fast_path_slower_for_cnn"] = float(summary["cnn_p50_norm"] > 1.1)
    return ExperimentReport(
        experiment="ext-latency-dist",
        title="Load-latency percentiles: baseline vs Sh40+C10+Boost",
        columns=["app", "design", "p50", "p90", "p99", "served_L1"],
        rows=rows,
        summary=summary,
        paper=PAPER,
    )
