"""Experiment harness: one module per table/figure of the paper.

Every experiment module exposes ``run(runner) -> ExperimentReport``.  The
shared :class:`~repro.experiments.base.Runner` memoizes simulation results
by (application, design, configuration), so experiments that share runs —
e.g. Figures 14, 15, 16 and 17 all consume the same 28 x 5 design matrix —
pay for each simulation once per process.

The paper-reported values each experiment targets live in its module-level
``PAPER`` dict and are folded into EXPERIMENTS.md.
"""

from repro.experiments.base import ExperimentReport, Runner, default_runner

__all__ = ["ExperimentReport", "Runner", "default_runner"]
