"""Experiment harness: one module per table/figure of the paper.

Every experiment module exposes ``run(runner) -> ExperimentReport`` and
pre-submits its full (application x design) grid via
:meth:`~repro.experiments.base.Runner.run_many`, which fans cache misses
out over a process pool (``jobs``/``REPRO_JOBS``).  The shared
:class:`~repro.experiments.base.Runner` memoizes simulation results by
(application, design, configuration) — in-process, plus an optional
persistent on-disk layer (``REPRO_CACHE_DIR``, see docs/sweep.md) — so
experiments that share runs (e.g. Figures 14-17 all consume the same
28 x 5 design matrix) pay for each simulation once, and repeat runs in
other processes pay nothing.

The paper-reported values each experiment targets live in its module-level
``PAPER`` dict and are folded into EXPERIMENTS.md.
"""

from repro.experiments.base import (
    ExperimentReport,
    Runner,
    default_runner,
    env_jobs,
    env_scale,
)

__all__ = ["ExperimentReport", "Runner", "default_runner", "env_jobs", "env_scale"]
