"""Registry of all experiments, for the benchmark harness and examples."""

from __future__ import annotations

from typing import Callable, Dict

from repro.experiments import (
    ablations,
    ext_bypass,
    ext_capacity,
    ext_latency_dist,
    ext_queues,
    fig01_motivation,
    fig02_utilization,
    fig04_private,
    fig06_private_area_power,
    fig08_sh40_sensitive,
    fig09_sh40_insensitive,
    fig11_clustered,
    fig12_clustered_area_power,
    fig13_boost,
    fig14_overall,
    fig15_scurve,
    fig16_missrate,
    fig17_utilization,
    fig18_energy_area,
    fig19_sensitivity,
    latency_analysis,
    robustness,
    sec2_single_l1,
    sens_boosted_baseline,
    sens_cta_scheduler,
    sens_system_size,
    table1_noc,
)
from repro.experiments.base import ExperimentReport, Runner

#: Experiment id -> run callable.  Ordered as in the paper.
EXPERIMENTS: Dict[str, Callable[[Runner], ExperimentReport]] = {
    "fig01": fig01_motivation.run,
    "fig02": fig02_utilization.run,
    "sec2c": sec2_single_l1.run,
    "tab1": table1_noc.run,
    "fig04": fig04_private.run,
    "fig06": fig06_private_area_power.run,
    "fig08": fig08_sh40_sensitive.run,
    "fig09": fig09_sh40_insensitive.run,
    "fig11": fig11_clustered.run,
    "fig12": fig12_clustered_area_power.run,
    "fig13": fig13_boost.run,
    "fig14": fig14_overall.run,
    "fig15": fig15_scurve.run,
    "fig16": fig16_missrate.run,
    "fig17": fig17_utilization.run,
    "fig18": fig18_energy_area.run,
    "fig19": fig19_sensitivity.run,
    "sens-cta": sens_cta_scheduler.run,
    "sens-size": sens_system_size.run,
    "sens-base": sens_boosted_baseline.run,
    "latency": latency_analysis.run,
    "ablations": ablations.run,
    "ext-bypass": ext_bypass.run,
    "ext-capacity": ext_capacity.run,
    "ext-latency-dist": ext_latency_dist.run,
    "ext-queues": ext_queues.run,
    "robustness": robustness.run,
}

#: Experiments that run no simulations (pure analytical models).
ANALYTICAL = frozenset({"tab1", "fig06", "fig12"})


def run_experiment(experiment_id: str, runner: Runner) -> ExperimentReport:
    """Run one experiment by id."""
    try:
        fn = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    return fn(runner)
