"""Figure 6 — NoC area and static power of private DC-L1 configurations.

Analytical (DSENT-like model): total crossbar area and static power of
Pr80/Pr40/Pr20/Pr10 normalized to the 80x32 baseline crossbar.

Paper: Pr80 adds insignificant overhead; Pr40/Pr20/Pr10 cut NoC area by
28%/54%/67%; Pr40's static power saving is only ~4% (more routers mean
more buffers), with Pr20/Pr10 saving more.
"""

from __future__ import annotations

from repro.core.designs import DesignSpec
from repro.experiments.base import ExperimentReport, Runner
from repro.noc.dsent import DsentModel, design_inventory

PAPER = {
    "pr40_area": 0.72,
    "pr20_area": 0.46,
    "pr10_area": 0.33,
    "pr40_static": 0.96,
}

NODE_COUNTS = (80, 40, 20, 10)


def run(runner: Runner) -> ExperimentReport:
    gpu = runner.config.gpu
    cores, l2 = gpu.num_cores, gpu.num_l2_slices
    base_inv = design_inventory(DesignSpec.baseline(), cores, l2)
    base_area = DsentModel.area_units(base_inv)
    base_static = DsentModel.static_units(base_inv)
    rows = [
        {"config": "Baseline", "area_norm": 1.0, "static_power_norm": 1.0}
    ]
    summary = {}
    for y in NODE_COUNTS:
        inv = design_inventory(DesignSpec.private(y), cores, l2)
        area = DsentModel.area_units(inv) / base_area
        static = DsentModel.static_units(inv) / base_static
        rows.append({"config": f"Pr{y}", "area_norm": area, "static_power_norm": static})
        summary[f"pr{y}_area"] = area
        summary[f"pr{y}_static"] = static
    return ExperimentReport(
        experiment="fig06",
        title="NoC area and static power under private DC-L1 designs (normalized)",
        columns=["config", "area_norm", "static_power_norm"],
        rows=rows,
        summary=summary,
        paper=PAPER,
    )
