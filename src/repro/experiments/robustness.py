"""Trace-seed robustness of the headline result.

The workload suite is synthetic, so a fair question is whether the
headline comparison (Sh40+C10+Boost vs baseline on the replication-
sensitive apps) depends on the particular RNG stream the traces were
drawn from.  This experiment re-generates every replication-sensitive
application under ``NUM_VARIANTS`` different trace variants — identical
distributional parameters, different random streams — and reports the
spread of the geomean speedup.

A reproduction whose conclusion flipped between seeds would be worthless;
we require the relative spread to stay within a few percent.
"""

from __future__ import annotations

import statistics

from repro.analysis.metrics import geomean
from repro.core.designs import DesignSpec
from repro.experiments.base import BASELINE, ExperimentReport, Runner
from repro.workloads.suite import REPLICATION_SENSITIVE, get_app

PAPER = {
    # Qualitative: the paper's conclusion should not be seed luck.
    "conclusion_stable": 1.0,
}

BOOST = DesignSpec.clustered(40, 10, boost=2.0)
NUM_VARIANTS = 3


def run(runner: Runner) -> ExperimentReport:
    rows = []
    means = []
    for k in range(NUM_VARIANTS):
        speedups = []
        for name in REPLICATION_SENSITIVE:
            prof = get_app(name).variant(k)
            base = runner.run(prof, BASELINE)
            speedups.append(runner.run(prof, BOOST).speedup_vs(base))
        gm = geomean(speedups)
        means.append(gm)
        rows.append(
            {
                "variant": k,
                "sensitive_speedup": gm,
                "min_app": min(speedups),
                "max_app": max(speedups),
            }
        )
    spread = (max(means) - min(means)) / statistics.mean(means)
    return ExperimentReport(
        experiment="robustness",
        title="Trace-seed robustness of the Sh40+C10+Boost headline",
        columns=["variant", "sensitive_speedup", "min_app", "max_app"],
        rows=rows,
        summary={
            "mean_speedup": statistics.mean(means),
            "relative_spread": spread,
            "conclusion_stable": float(min(means) > 1.15 and spread < 0.15),
        },
        paper=PAPER,
    )
