"""Figure 4 — private DC-L1 designs (Pr80/Pr40/Pr20/Pr10).

(a) IPC and (b) DC-L1 miss rate of each aggregation granularity,
normalized to the private-L1 baseline, averaged over the
replication-sensitive applications; (c) the same designs with perfect
(always-hit) DC-L1s, bounding what better caching could add at each
granularity.

Paper: miss-rate reductions of 0%/19%/49%/74% for Pr80/Pr40/Pr20/Pr10;
IPC -3%/+15%/-3%/-34%; under perfect DC-L1s Pr40 reaches ~2.2x while the
perfect-L1 baseline reaches 5.2x (bandwidth, not capacity, limits deep
aggregation).
"""

from __future__ import annotations

from repro.analysis.metrics import amean, geomean
from repro.core.designs import DesignSpec
from repro.experiments.base import BASELINE, ExperimentReport, Runner
from repro.workloads.suite import REPLICATION_SENSITIVE

PAPER = {
    "pr80_speedup": 0.97,
    "pr40_speedup": 1.15,
    "pr20_speedup": 0.97,
    "pr10_speedup": 0.66,
    "pr40_miss_reduction": 0.19,
    "pr20_miss_reduction": 0.49,
    "pr10_miss_reduction": 0.74,
    "pr40_perfect_speedup": 2.2,
    "base_perfect_speedup": 5.2,
}

NODE_COUNTS = (80, 40, 20, 10)


def run(runner: Runner) -> ExperimentReport:
    specs = [BASELINE]
    for y in NODE_COUNTS:
        specs.append(DesignSpec.private(y))
        specs.append(DesignSpec.private(y, perfect_l1=True))
    specs.append(DesignSpec.baseline(perfect_l1=True, label="Base+PerfectL1"))
    runner.run_many([(n, s) for n in REPLICATION_SENSITIVE for s in specs])

    rows = []
    summary = {}
    base_results = {n: runner.run(n, BASELINE) for n in REPLICATION_SENSITIVE}

    def evaluate(spec: DesignSpec):
        speedups, missn = [], []
        for name in REPLICATION_SENSITIVE:
            res = runner.run(name, spec)
            base = base_results[name]
            speedups.append(res.speedup_vs(base))
            missn.append(res.miss_rate_vs(base))
        return geomean(speedups), amean(missn)

    for y in NODE_COUNTS:
        sp, mn = evaluate(DesignSpec.private(y))
        sp_perfect, _ = evaluate(DesignSpec.private(y, perfect_l1=True))
        rows.append(
            {
                "config": f"Pr{y}",
                "speedup": sp,
                "miss_rate_norm": mn,
                "miss_reduction": 1.0 - mn,
                "perfect_speedup": sp_perfect,
            }
        )
        summary[f"pr{y}_speedup"] = sp
        summary[f"pr{y}_miss_reduction"] = 1.0 - mn
        summary[f"pr{y}_perfect_speedup"] = sp_perfect

    # Perfect-L1 private baseline ("Base" in Figure 4c).
    sp_base_perfect = geomean(
        runner.run(n, DesignSpec.baseline(perfect_l1=True, label="Base+PerfectL1"))
        .speedup_vs(base_results[n])
        for n in REPLICATION_SENSITIVE
    )
    rows.append(
        {
            "config": "Base (perfect L1)",
            "speedup": 1.0,
            "miss_rate_norm": 1.0,
            "miss_reduction": 0.0,
            "perfect_speedup": sp_base_perfect,
        }
    )
    summary["base_perfect_speedup"] = sp_base_perfect
    return ExperimentReport(
        experiment="fig04",
        title="Private DC-L1 designs on replication-sensitive apps (normalized to baseline)",
        columns=["config", "speedup", "miss_rate_norm", "miss_reduction", "perfect_speedup"],
        rows=rows,
        summary=summary,
        paper=PAPER,
    )
