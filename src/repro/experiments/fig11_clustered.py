"""Figure 11 — cluster-count sweep of the clustered shared DC-L1 design.

``Sh40+CZ`` for Z in {1, 5, 10, 20, 40}: C1 is exactly Sh40 and C40 is
exactly Pr40 (the design-space endpoints).  DC-L1 miss rate and IPC on the
replication-sensitive applications, normalized to the private-L1 baseline.

Paper: miss-rate reductions of 89%/72%/61%/41%/19% for C1/C5/C10/C20/C40;
cluster counts between the endpoints trade replication (up to Z copies of
a line) against NoC size; C10 is chosen.
"""

from __future__ import annotations

from repro.analysis.metrics import amean, geomean
from repro.core.designs import DesignSpec
from repro.experiments.base import BASELINE, ExperimentReport, Runner
from repro.workloads.suite import REPLICATION_SENSITIVE

PAPER = {
    "c1_miss_reduction": 0.89,
    "c5_miss_reduction": 0.72,
    "c10_miss_reduction": 0.61,
    "c20_miss_reduction": 0.41,
    "c40_miss_reduction": 0.19,
}

CLUSTER_COUNTS = (1, 5, 10, 20, 40)


def run(runner: Runner) -> ExperimentReport:
    specs = {z: DesignSpec.clustered(40, z, label=f"C{z}") for z in CLUSTER_COUNTS}
    runner.run_many([
        (n, s)
        for n in REPLICATION_SENSITIVE
        for s in (BASELINE, *specs.values())
    ])
    base_results = {n: runner.run(n, BASELINE) for n in REPLICATION_SENSITIVE}
    rows = []
    summary = {}
    for z in CLUSTER_COUNTS:
        spec = specs[z]
        speedups, missn = [], []
        for name in REPLICATION_SENSITIVE:
            res = runner.run(name, spec)
            speedups.append(res.speedup_vs(base_results[name]))
            missn.append(res.miss_rate_vs(base_results[name]))
        sp, mn = geomean(speedups), amean(missn)
        rows.append(
            {
                "config": f"C{z}",
                "max_replicas": z,
                "speedup": sp,
                "miss_rate_norm": mn,
                "miss_reduction": 1.0 - mn,
            }
        )
        summary[f"c{z}_miss_reduction"] = 1.0 - mn
        summary[f"c{z}_speedup"] = sp
    return ExperimentReport(
        experiment="fig11",
        title="Clustered shared DC-L1 cluster sweep (replication-sensitive apps)",
        columns=["config", "max_replicas", "speedup", "miss_rate_norm", "miss_reduction"],
        rows=rows,
        summary=summary,
        paper=PAPER,
    )
