"""Section VIII-A — boosted baselines.

Can the baseline be patched instead?  Three strengthened baselines on the
replication-sensitive applications:

* 2x per-core L1 capacity (cache-boosted; costs ~84% more cache area),
* 2x NoC frequency (the DSENT model says the 80x32 crossbar cannot
  actually clock that high — reported as a feasibility flag),
* wider flits (modelled as the same 2x NoC bandwidth lever).

Paper: boosted baselines gain 33-36%, still ~22 points below
Sh40+C10+Boost's 75%, while paying large area/power costs.
"""

from __future__ import annotations

from repro.analysis.metrics import geomean
from repro.core.designs import DesignSpec
from repro.experiments.base import BASELINE, ExperimentReport, Runner
from repro.noc.dsent import DsentModel
from repro.power.cacti import cache_area_mm2
from repro.workloads.suite import REPLICATION_SENSITIVE

PAPER = {
    "cache_boosted_speedup": 1.35,
    "noc_boosted_speedup": 1.35,
    "dcl1_boost_speedup": 1.75,
    "cache_area_overhead": 0.84,
    "noc_boost_feasible": 0.0,
}

VARIANTS = (
    DesignSpec.baseline(l1_size_mult=2.0, label="Baseline+2xL1"),
    DesignSpec.baseline(noc2_freq_mult=2.0, label="Baseline+2xNoC"),
)
BOOST = DesignSpec.clustered(40, 10, boost=2.0)


def run(runner: Runner) -> ExperimentReport:
    def group(spec):
        vals = []
        for name in REPLICATION_SENSITIVE:
            base = runner.run(name, BASELINE)
            vals.append(runner.run(name, spec).speedup_vs(base))
        return geomean(vals)

    rows = []
    for spec in VARIANTS + (BOOST,):
        rows.append({"config": spec.label, "speedup": group(spec)})

    gpu = runner.config.gpu
    base_cache = cache_area_mm2(gpu.total_l1_bytes, gpu.num_cores, gpu.total_l1_bytes)
    big_cache = cache_area_mm2(2 * gpu.total_l1_bytes, gpu.num_cores, gpu.total_l1_bytes)
    return ExperimentReport(
        experiment="sens-base",
        title="Boosted baselines vs Sh40+C10+Boost (replication-sensitive apps)",
        columns=["config", "speedup"],
        rows=rows,
        summary={
            "cache_boosted_speedup": rows[0]["speedup"],
            "noc_boosted_speedup": rows[1]["speedup"],
            "dcl1_boost_speedup": rows[2]["speedup"],
            "cache_area_overhead": big_cache / base_cache - 1.0,
            "noc_boost_feasible": float(
                DsentModel.supports_frequency(gpu.num_cores, gpu.num_l2_slices, 1.4)
            ),
        },
        paper=PAPER,
    )
