"""Figure 12 — NoC area and static power versus cluster count.

Analytical: the clustered design replaces the 80x40 NoC#1 crossbar with
Z small crossbars and the 40x32 NoC#2 crossbar with per-address-range
Z x O crossbars.

Paper: NoC area savings of 45%/50%/45% and static power savings of
15%/16%/14% for C5/C10/C20 versus the baseline; Sh40 (C1) instead costs
+69% area and +57% static power.
"""

from __future__ import annotations

from repro.core.designs import DesignSpec
from repro.experiments.base import ExperimentReport, Runner
from repro.noc.dsent import DsentModel, design_inventory

PAPER = {
    "c1_area": 1.69,
    "c5_area": 0.55,
    "c10_area": 0.50,
    "c20_area": 0.55,
    "c1_static": 1.57,
    "c5_static": 0.85,
    "c10_static": 0.84,
    "c20_static": 0.86,
}

CLUSTER_COUNTS = (1, 5, 10, 20, 40)


def run(runner: Runner) -> ExperimentReport:
    gpu = runner.config.gpu
    cores, l2 = gpu.num_cores, gpu.num_l2_slices
    base_inv = design_inventory(DesignSpec.baseline(), cores, l2)
    base_area = DsentModel.area_units(base_inv)
    base_static = DsentModel.static_units(base_inv)
    rows = [{"config": "Baseline", "area_norm": 1.0, "static_power_norm": 1.0}]
    summary = {}
    for z in CLUSTER_COUNTS:
        inv = design_inventory(DesignSpec.clustered(40, z), cores, l2)
        area = DsentModel.area_units(inv) / base_area
        static = DsentModel.static_units(inv) / base_static
        rows.append({"config": f"C{z}", "area_norm": area, "static_power_norm": static})
        summary[f"c{z}_area"] = area
        summary[f"c{z}_static"] = static
    return ExperimentReport(
        experiment="fig12",
        title="NoC area and static power vs cluster count (normalized)",
        columns=["config", "area_norm", "static_power_norm"],
        rows=rows,
        summary=summary,
        paper=PAPER,
    )
