"""Section VIII-A — system-size scalability.

A 120-core GPU with 60 DC-L1 nodes, 48 L2 slices and 24 memory channels
running Sh60+C10+Boost; workloads grow with the machine (per-core work
constant).

Paper: +67% on the replication-sensitive applications and maintained
performance on the insensitive ones — same trend as the 80-core system.
"""

from __future__ import annotations

from repro.analysis.metrics import geomean
from repro.core.designs import DesignSpec
from repro.experiments.base import BASELINE, ExperimentReport, Runner
from repro.workloads.suite import REPLICATION_SENSITIVE, replication_insensitive_apps

PAPER = {
    "sensitive_speedup_120": 1.67,
    "insensitive_speedup_120": 1.0,
}

SCALE_FACTOR = 1.5  # 80 -> 120 cores


def run(runner: Runner) -> ExperimentReport:
    gpu_big = runner.config.gpu.scaled_up(SCALE_FACTOR)
    boost_big = DesignSpec.clustered(60, 10, boost=2.0)

    def group(names):
        vals = []
        for name in names:
            from repro.workloads.suite import get_app

            prof = get_app(name).with_cores_scaled(SCALE_FACTOR)
            base = runner.run(prof, BASELINE, gpu=gpu_big)
            res = runner.run(prof, boost_big, gpu=gpu_big)
            vals.append(res.speedup_vs(base))
        return geomean(vals)

    sens = group(REPLICATION_SENSITIVE)
    insens = group([p.name for p in replication_insensitive_apps()])
    rows = [
        {"group": "replication-sensitive", "speedup": sens},
        {"group": "replication-insensitive", "speedup": insens},
    ]
    return ExperimentReport(
        experiment="sens-size",
        title="Sh60+C10+Boost on a 120-core / 48-L2 / 24-channel system",
        columns=["group", "speedup"],
        rows=rows,
        summary={
            "sensitive_speedup_120": sens,
            "insensitive_speedup_120": insens,
        },
        paper=PAPER,
    )
