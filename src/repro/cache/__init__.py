"""Cache substrate: set-associative caches, replacement, MSHRs, replication directory."""

from repro.cache.cache import CacheStats, SetAssociativeCache
from repro.cache.directory import ReplicationDirectory
from repro.cache.mshr import MSHRFile
from repro.cache.replacement import FIFOPolicy, LRUPolicy, make_policy

__all__ = [
    "SetAssociativeCache",
    "CacheStats",
    "ReplicationDirectory",
    "MSHRFile",
    "LRUPolicy",
    "FIFOPolicy",
    "make_policy",
]
