"""Set-associative cache (functional model).

The cache tracks *which lines are resident* and full hit/miss statistics;
all timing (bank occupancy, access latency) is modelled by the reservation
servers in :mod:`repro.sim.system`, keeping this class purely functional
and independently testable.

The paper's (DC-)L1 policy is write-evict with no-write-allocate
(Section III): a store hit evicts the line (which is forwarded to L2), a
store miss allocates nothing.  That behaviour lives in
:meth:`SetAssociativeCache.access_store`; loads use
:meth:`SetAssociativeCache.access_load` + :meth:`SetAssociativeCache.install`.

A cache can be marked *perfect* (always hits) for the paper's perfect-L1
studies (Figure 4c), and its capacity can be scaled (the 16x study of
Figure 1) via the ``size_bytes`` argument.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.directory import ReplicationDirectory
from repro.cache.replacement import make_policy


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


class CacheStats:
    """Hit/miss accounting for one cache."""

    __slots__ = (
        "load_hits",
        "load_misses",
        "store_hits",
        "store_misses",
        "installs",
        "evictions",
        "write_evicts",
        "replicated_misses",
    )

    def __init__(self) -> None:
        self.load_hits = 0
        self.load_misses = 0
        self.store_hits = 0
        self.store_misses = 0
        self.installs = 0
        self.evictions = 0
        self.write_evicts = 0
        # Misses whose line was resident in a *sibling* cache at miss time
        # (numerator of the paper's replication ratio).
        self.replicated_misses = 0

    @property
    def accesses(self) -> int:
        return self.load_hits + self.load_misses + self.store_hits + self.store_misses

    @property
    def misses(self) -> int:
        return self.load_misses + self.store_misses

    @property
    def hits(self) -> int:
        return self.load_hits + self.store_hits

    @property
    def miss_rate(self) -> float:
        """Overall miss rate; 0.0 when the cache saw no accesses."""
        n = self.accesses
        return self.misses / n if n else 0.0

    @property
    def load_miss_rate(self) -> float:
        n = self.load_hits + self.load_misses
        return self.load_misses / n if n else 0.0

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another cache's counters into this one."""
        self.load_hits += other.load_hits
        self.load_misses += other.load_misses
        self.store_hits += other.store_hits
        self.store_misses += other.store_misses
        self.installs += other.installs
        self.evictions += other.evictions
        self.write_evicts += other.write_evicts
        self.replicated_misses += other.replicated_misses

    def to_dict(self) -> dict:
        """All counters as a plain dict (persistent result cache)."""
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, data: dict) -> "CacheStats":
        """Rebuild from :meth:`to_dict` output; unknown keys are an error."""
        stats = cls()
        for key, value in data.items():
            if key not in cls.__slots__:
                raise ValueError(f"unknown CacheStats counter {key!r}")
            setattr(stats, key, value)
        return stats


class SetAssociativeCache:
    """A set-associative cache over line indices.

    Parameters
    ----------
    name:
        Identifier for error messages and reports.
    size_bytes / assoc / line_bytes:
        Geometry.  ``size_bytes`` must be a multiple of
        ``assoc * line_bytes`` and the resulting set count a power of two.
    policy:
        Replacement policy name (``"lru"`` or ``"fifo"``).
    cache_id:
        Index of this cache within its level (used by the directory).
    directory:
        Optional :class:`ReplicationDirectory` shared by all caches of the
        level; enables the replication-ratio and replica-count metrics.
    perfect:
        If True, every load/store hits and nothing is ever installed.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        assoc: int,
        line_bytes: int,
        policy: str = "lru",
        cache_id: int = 0,
        directory: Optional[ReplicationDirectory] = None,
        perfect: bool = False,
        index_divisor: int = 1,
    ):
        if assoc <= 0:
            raise ValueError(f"{name}: associativity must be positive")
        if not _is_pow2(line_bytes):
            raise ValueError(f"{name}: line size {line_bytes} must be a power of two")
        if size_bytes % (assoc * line_bytes) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} not a multiple of assoc*line "
                f"({assoc}*{line_bytes})"
            )
        num_sets = size_bytes // (assoc * line_bytes)
        if not _is_pow2(num_sets):
            raise ValueError(f"{name}: set count {num_sets} must be a power of two")
        if index_divisor < 1:
            raise ValueError(f"{name}: index_divisor must be >= 1")

        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.num_sets = num_sets
        self._set_mask = num_sets - 1
        # Address-sliced levels (home-interleaved DC-L1s, L2 slices) only
        # ever see lines congruent to their slice id; indexing sets with
        # ``line // index_divisor`` strips the slice-selection bits so the
        # whole cache is usable (as real sliced caches index above the
        # slice bits).
        self.index_divisor = index_divisor
        self.cache_id = cache_id
        self.directory = directory
        self.perfect = perfect
        self.policy_name = policy
        self._sets = [make_policy(policy) for _ in range(num_sets)]
        self.stats = CacheStats()
        # SimSanitizer hook: when a ResourceLedger is attached, installs
        # are checked against the set's associativity *at install time*
        # (continuous version of the post-run capacity audit).
        self.ledger = None

    # -- geometry ---------------------------------------------------------

    def set_index(self, line: int) -> int:
        """Cache set holding ``line`` (slice bits stripped, then masked)."""
        if self.index_divisor > 1:
            line //= self.index_divisor
        return line & self._set_mask

    @property
    def num_lines(self) -> int:
        return self.num_sets * self.assoc

    def occupancy(self) -> int:
        """Number of lines currently resident."""
        return sum(len(s) for s in self._sets)

    # -- functional accesses ---------------------------------------------

    def contains(self, line: int) -> bool:
        """Presence probe with no side effects (no stats, no recency update)."""
        return line in self._sets[self.set_index(line)]

    def access_load(self, line: int) -> bool:
        """Probe for a load; returns True on hit.  Misses do NOT install —
        call :meth:`install` when the fill returns (mirroring Q4 in the
        paper's DC-L1 node)."""
        if self.perfect:
            self.stats.load_hits += 1
            return True
        s = self._sets[self.set_index(line)]
        if line in s:
            s.touch(line)
            self.stats.load_hits += 1
            return True
        self.stats.load_misses += 1
        if self.directory is not None and self.directory.held_elsewhere(line, self.cache_id):
            self.stats.replicated_misses += 1
        return False

    def access_store(self, line: int) -> bool:
        """Write-evict / no-write-allocate store.  Returns True on hit
        (the line was resident and has been evicted toward L2)."""
        if self.perfect:
            self.stats.store_hits += 1
            return True
        s = self._sets[self.set_index(line)]
        if line in s:
            s.remove(line)
            self.stats.store_hits += 1
            self.stats.write_evicts += 1
            if self.directory is not None:
                self.directory.on_evict(line, self.cache_id)
            return True
        self.stats.store_misses += 1
        if self.directory is not None and self.directory.held_elsewhere(line, self.cache_id):
            self.stats.replicated_misses += 1
        return False

    def install(self, line: int) -> Optional[int]:
        """Install ``line`` (a returning fill); returns the victim line if
        one was evicted, else None.  Installing a line already present is a
        no-op (a racing fill merged at the MSHR level)."""
        if self.perfect:
            return None
        s = self._sets[self.set_index(line)]
        if line in s:
            s.touch(line)
            return None
        victim = None
        if len(s) >= self.assoc:
            victim = s.evict()
            self.stats.evictions += 1
            if self.directory is not None:
                self.directory.on_evict(victim, self.cache_id)
        s.insert(line)
        self.stats.installs += 1
        if self.directory is not None:
            self.directory.on_install(line, self.cache_id)
        if self.ledger is not None and len(s) > self.assoc:
            self.ledger.violation(
                f"{self.name}: set {self.set_index(line)} holds {len(s)} lines "
                f"(> {self.assoc}-way) after installing {line:#x}"
            )
        return victim

    def invalidate(self, line: int) -> bool:
        """Remove ``line`` if present; returns True when it was resident."""
        s = self._sets[self.set_index(line)]
        if s.remove(line):
            if self.directory is not None:
                self.directory.on_evict(line, self.cache_id)
            return True
        return False

    def flush(self) -> int:
        """Invalidate everything; returns the number of lines dropped."""
        dropped = 0
        for set_idx, s in enumerate(self._sets):
            for line in list(s.lines()):
                if s.remove(line):
                    dropped += 1
                    if self.directory is not None:
                        self.directory.on_evict(line, self.cache_id)
            del set_idx
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssociativeCache({self.name!r}, {self.size_bytes}B, "
            f"{self.assoc}-way, sets={self.num_sets})"
        )
