"""Global replication directory.

Tracks, for every cache line, which caches of a level currently hold a
copy.  This is purely an *instrumentation* structure — the hardware the
paper proposes has no such directory; we use it to compute the paper's two
replication metrics:

* **replication ratio** (Figure 1): the fraction of L1 misses whose line
  was, at miss time, resident in at least one *other* L1;
* **average replica count** (Figure 16 discussion: baseline 7.7 → Pr40 5.7
  → Sh40+C10+Boost 2.8 → Sh40 0 *extra* copies): we report the mean number
  of copies per distinct resident line, sampled at every install so the
  average is weighted by fill activity, matching how GPGPU-Sim-style
  counters are gathered.
"""

from __future__ import annotations


class ReplicationDirectory:
    """Copy-set tracking for one cache level."""

    def __init__(self) -> None:
        self._holders: dict = {}
        # Sampled replica statistics (updated at install time).
        self.install_samples = 0
        self.copies_sum = 0

    def on_install(self, line: int, cache_id: int) -> None:
        """Record that ``cache_id`` now holds ``line``."""
        holders = self._holders.get(line)
        if holders is None:
            holders = set()
            self._holders[line] = holders
        holders.add(cache_id)
        self.install_samples += 1
        self.copies_sum += len(holders)

    def on_evict(self, line: int, cache_id: int) -> None:
        """Record that ``cache_id`` dropped ``line``."""
        holders = self._holders.get(line)
        if holders is None:
            return
        holders.discard(cache_id)
        if not holders:
            del self._holders[line]

    def copies(self, line: int) -> int:
        """Current number of caches holding ``line``."""
        holders = self._holders.get(line)
        return len(holders) if holders else 0

    def held_elsewhere(self, line: int, cache_id: int) -> bool:
        """True when some cache other than ``cache_id`` holds ``line``."""
        holders = self._holders.get(line)
        if not holders:
            return False
        if cache_id in holders:
            return len(holders) > 1
        return True

    def holders(self, line: int) -> frozenset:
        """Snapshot of the caches holding ``line``."""
        holders = self._holders.get(line)
        return frozenset(holders) if holders else frozenset()

    # -- aggregate metrics -------------------------------------------------

    def distinct_lines(self) -> int:
        """Number of distinct lines resident anywhere in the level."""
        return len(self._holders)

    def total_copies(self) -> int:
        """Total resident copies across the level (>= distinct_lines)."""
        return sum(len(h) for h in self._holders.values())

    def mean_replicas_sampled(self) -> float:
        """Install-weighted mean copies per line (the Fig. 16 metric)."""
        if self.install_samples == 0:
            return 0.0
        return self.copies_sum / self.install_samples

    def mean_replicas_resident(self) -> float:
        """End-state mean copies per distinct resident line."""
        n = len(self._holders)
        if n == 0:
            return 0.0
        return self.total_copies() / n

    def reset(self) -> None:
        self._holders.clear()
        self.install_samples = 0
        self.copies_sum = 0
