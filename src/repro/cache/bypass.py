"""Adaptive streaming-bypass filter for (DC-)L1 fills.

The paper's related-work section notes that per-cache capacity-management
techniques (fill bypassing, reuse prediction) are *complementary* to the
DC-L1 organization: they improve each individual DC-L1 while the DC-L1
design coordinates capacity across them.  This module implements the
classic reuse-history bypass as that complementary extension:

* every resident line carries a "reused" bit (set on the first hit);
* evictions feed a sliding window of outcomes (1 = evicted dead, i.e.
  never reused);
* when the recent dead-on-eviction rate exceeds ``threshold``, new fills
  are *bypassed* — the data still flows to the requester, but the line is
  not installed, protecting whatever reusable working set the cache holds
  from streaming pollution;
* every ``sample_every``-th fill installs regardless, so the filter keeps
  learning and recovers when the access pattern changes.

The filter is deliberately self-contained: the system consults
``should_install()`` at fill time and reports ``on_install / on_hit /
on_evict`` events; no cache internals change.
"""

from __future__ import annotations

from collections import deque


class StreamingBypassFilter:
    """Reuse-history fill bypass for one cache."""

    def __init__(self, threshold: float = 0.80, window: int = 256,
                 sample_every: int = 16):
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if window < 8:
            raise ValueError("window too small to learn from")
        if sample_every < 2:
            raise ValueError("sample_every must be >= 2")
        self.threshold = threshold
        self.window = window
        self.sample_every = sample_every
        self._unreused: dict = {}  # resident line -> True while never reused
        self._outcomes: deque = deque(maxlen=window)
        self._dead_sum = 0
        self._fills = 0
        # statistics
        self.bypassed = 0
        self.sampled = 0

    # -- event hooks ---------------------------------------------------------

    def on_install(self, line: int) -> None:
        self._unreused[line] = True

    def on_hit(self, line: int) -> None:
        self._unreused.pop(line, None)

    def on_evict(self, line: int) -> None:
        dead = 1 if self._unreused.pop(line, False) else 0
        if len(self._outcomes) == self._outcomes.maxlen:
            self._dead_sum -= self._outcomes[0]
        self._outcomes.append(dead)
        self._dead_sum += dead

    # -- decision --------------------------------------------------------------

    @property
    def dead_rate(self) -> float:
        """Recent fraction of lines evicted without any reuse."""
        n = len(self._outcomes)
        return self._dead_sum / n if n else 0.0

    @property
    def bypassing(self) -> bool:
        """Whether the filter is currently in bypass mode."""
        return (
            len(self._outcomes) >= self.window // 4
            and self.dead_rate > self.threshold
        )

    def should_install(self) -> bool:
        """Decide the fate of the next fill (False = bypass)."""
        self._fills += 1
        if self._fills % self.sample_every == 0:
            self.sampled += 1
            return True
        if self.bypassing:
            self.bypassed += 1
            return False
        return True
