"""Replacement policies for set-associative caches.

Policies are per-*set* objects: each cache set owns one policy instance that
tracks the lines resident in that set and answers "which line is the
victim?".  Keeping the policy per set (rather than a global policy with a
set argument) keeps lookups dictionary-free on the hot path.

Two policies are provided, both O(1):

* :class:`LRUPolicy` — least-recently-used, the paper's L1/L2 policy.
* :class:`FIFOPolicy` — insertion-order eviction, used in ablations.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Optional


class LRUPolicy:
    """Least-recently-used replacement for a single cache set."""

    __slots__ = ("_order",)

    def __init__(self) -> None:
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, line: int) -> bool:
        return line in self._order

    def touch(self, line: int) -> None:
        """Record a hit on ``line`` (moves it to MRU position)."""
        self._order.move_to_end(line)

    def insert(self, line: int) -> None:
        """Insert a new line at MRU position."""
        self._order[line] = None

    def victim(self) -> int:
        """Return (without removing) the current victim line."""
        return next(iter(self._order))

    def evict(self) -> int:
        """Remove and return the LRU line."""
        line, _ = self._order.popitem(last=False)
        return line

    def remove(self, line: int) -> bool:
        """Remove a specific line (e.g. write-evict); returns True if present."""
        if line in self._order:
            del self._order[line]
            return True
        return False

    def lines(self):
        """Iterate over resident lines, LRU first."""
        return iter(self._order)


class FIFOPolicy:
    """First-in first-out replacement for a single cache set."""

    __slots__ = ("_queue", "_present")

    def __init__(self) -> None:
        self._queue: deque = deque()
        self._present: set = set()

    def __len__(self) -> int:
        return len(self._present)

    def __contains__(self, line: int) -> bool:
        return line in self._present

    def touch(self, line: int) -> None:
        """FIFO ignores hits."""

    def insert(self, line: int) -> None:
        self._queue.append(line)
        self._present.add(line)

    def victim(self) -> int:
        self._compact()
        return self._queue[0]

    def evict(self) -> int:
        self._compact()
        line = self._queue.popleft()
        self._present.discard(line)
        return line

    def remove(self, line: int) -> bool:
        # Lazy removal: drop from the presence set; stale queue entries are
        # skipped during compaction.
        if line in self._present:
            self._present.discard(line)
            return True
        return False

    def lines(self):
        return iter(self._present)

    def _compact(self) -> None:
        while self._queue and self._queue[0] not in self._present:
            self._queue.popleft()


_POLICIES = {"lru": LRUPolicy, "fifo": FIFOPolicy}


def make_policy(name: str):
    """Instantiate a replacement policy by name (``"lru"`` or ``"fifo"``)."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None


def policy_factory(name: str) -> Optional[type]:
    """Return the policy class for ``name`` without instantiating it."""
    if name not in _POLICIES:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        )
    return _POLICIES[name]
