"""Miss Status Holding Registers (MSHR) with request merging.

Each (DC-)L1 and L2 slice owns an :class:`MSHRFile`.  When a load misses:

* if an entry for the line already exists, the request *merges* — it waits
  on the existing fill and generates no additional downstream traffic
  (secondary miss);
* otherwise a new entry is allocated and the miss goes downstream
  (primary miss);
* if the file is full, the request stalls in a FIFO and is retried when an
  entry frees — this backpressure is what makes very-high-miss-rate
  workloads lean on the lower levels of the hierarchy realistically.

The paper's Lite Core removes the per-core L1 *and its MSHRs*; in DC-L1
designs the MSHR file lives in the DC-L1 node instead, so a design with 40
DC-L1 nodes has 40 (larger) MSHR files rather than 80 small ones.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional


class MSHREntry:
    """One outstanding line fill and the requests waiting on it."""

    __slots__ = ("line", "waiters")

    def __init__(self, line: int):
        self.line = line
        self.waiters: List = []


class MSHRFile:
    """A finite file of :class:`MSHREntry` with merge and stall support."""

    def __init__(self, num_entries: int, max_merged: int = 64):
        if num_entries <= 0:
            raise ValueError("MSHR file needs at least one entry")
        if max_merged < 1:
            raise ValueError("max_merged must be >= 1")
        self.num_entries = num_entries
        self.max_merged = max_merged
        self._entries: dict = {}
        self.stalled: deque = deque()
        # SimSanitizer hooks: when a ResourceLedger is attached, every
        # entry allocate/release is mirrored in it so leaks and double
        # frees are caught and attributed (see repro.analysis.sanitizer).
        self.ledger = None
        self.ledger_scope = "mshr"
        # statistics
        self.primary_misses = 0
        self.secondary_misses = 0
        self.stall_events = 0
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.num_entries

    def outstanding(self, line: int) -> bool:
        """Is a fill for ``line`` already in flight?"""
        return line in self._entries

    def allocate(self, line: int, waiter) -> str:
        """Try to track a miss on ``line`` for ``waiter``.

        Returns one of:

        * ``"new"`` — a fresh entry was allocated; caller must send the
          miss downstream and later call :meth:`release`.
        * ``"merged"`` — an in-flight fill exists; ``waiter`` was attached.
        * ``"stalled"`` — the file (or the entry's merge capacity) is
          exhausted; ``waiter`` was queued and the caller must retry it via
          :meth:`pop_stalled` after the next :meth:`release`.
        """
        entry = self._entries.get(line)
        if entry is not None:
            if len(entry.waiters) >= self.max_merged:
                self.stalled.append(waiter)
                self.stall_events += 1
                return "stalled"
            entry.waiters.append(waiter)
            self.secondary_misses += 1
            if self.ledger is not None:
                from repro.analysis.sanitizer import describe_owner

                self.ledger.note(
                    self.ledger_scope, line, f"merged {describe_owner(waiter)}"
                )
            return "merged"
        if self.full:
            self.stalled.append(waiter)
            self.stall_events += 1
            return "stalled"
        entry = MSHREntry(line)
        entry.waiters.append(waiter)
        self._entries[line] = entry
        self.primary_misses += 1
        if len(self._entries) > self.peak_occupancy:
            self.peak_occupancy = len(self._entries)
        if self.ledger is not None:
            self.ledger.acquire(self.ledger_scope, line, waiter)
        return "new"

    def release(self, line: int) -> List:
        """The fill for ``line`` returned; frees the entry and returns all
        waiters to be resumed."""
        if self.ledger is not None:
            # Raises an attributed SanitizerError on double-free, before
            # the functional state is touched.
            self.ledger.release(self.ledger_scope, line)
        entry = self._entries.pop(line, None)
        if entry is None:
            raise KeyError(f"release of line {line:#x} with no MSHR entry")
        return entry.waiters

    def pop_stalled(self) -> Optional[object]:
        """Dequeue one stalled waiter to retry (None when empty)."""
        if self.stalled:
            return self.stalled.popleft()
        return None

    def has_stalled(self) -> bool:
        return bool(self.stalled)

    def drained(self) -> bool:
        """True when nothing is outstanding and nothing is stalled."""
        return not self._entries and not self.stalled
