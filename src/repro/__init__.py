"""repro — reproduction of "Analyzing and Leveraging Decoupled L1 Caches in GPUs".

This package implements, in pure Python, the full system described in the
HPCA 2021 paper by Ibrahim, Kayiran, Eckert, Loh, and Jog:

* a trace-driven, event-based GPU timing model (cores, wavefronts, caches,
  two NoCs, L2 slices, memory controllers) — the simulation substrate,
* the paper's contribution: DeCoupled-L1 (DC-L1) cache designs — private
  aggregated (``PrY``), fully shared (``ShY``), clustered shared
  (``ShY+CZ``) and the frequency-boosted variant (``+Boost``),
* analytical NoC area / power / max-frequency models (DSENT-like) and a
  cache area model (CACTI-like),
* a 28-application synthetic workload suite calibrated to the paper's
  Figure 1 characterization, and
* one experiment module per table and figure of the paper's evaluation.

Quickstart::

    from repro import simulate, DesignSpec, get_app

    baseline = simulate(get_app("T-AlexNet"), DesignSpec.baseline())
    boosted = simulate(get_app("T-AlexNet"), DesignSpec.clustered(40, 10, boost=2.0))
    print(boosted.ipc / baseline.ipc)
"""

from repro.core.designs import DesignSpec, DesignKind
from repro.sim.config import SimConfig, GPUConfig
from repro.sim.results import SimResult
from repro.sim.system import GPUSystem, simulate
from repro.workloads.profile import AppProfile
from repro.workloads.suite import APP_NAMES, get_app, all_apps, replication_sensitive_apps

__version__ = "1.0.0"

__all__ = [
    "DesignSpec",
    "DesignKind",
    "SimConfig",
    "GPUConfig",
    "SimResult",
    "GPUSystem",
    "simulate",
    "AppProfile",
    "APP_NAMES",
    "get_app",
    "all_apps",
    "replication_sensitive_apps",
    "__version__",
]
