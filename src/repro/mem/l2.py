"""L2 slice: a banked, address-sliced shared cache segment.

Each slice couples a functional :class:`SetAssociativeCache` with an
:class:`MSHRFile`; bank timing (occupancy + access latency) is modelled by
the slice's reservation server inside :mod:`repro.sim.system`.  The L2 is
shared by construction — a line has exactly one serving slice — so no
replication directory is needed at this level.

Writes at the L2 are allocate-on-write (GPGPU-Sim v3's L2 default) with
write-back: stores mark lines dirty, and evicting a dirty line queues a
write-back whose DRAM bandwidth the system charges to the owning memory
channel (the traffic is fire-and-forget — nothing waits on it — but it
competes with fills for bank-group occupancy).
"""

from __future__ import annotations

from typing import List

from repro.cache.cache import SetAssociativeCache
from repro.cache.mshr import MSHRFile


class L2Slice:
    """One address-sliced L2 bank."""

    def __init__(
        self,
        slice_id: int,
        size_bytes: int,
        assoc: int,
        line_bytes: int,
        mshr_entries: int = 64,
        policy: str = "lru",
        perfect: bool = False,
        num_slices: int = 1,
    ):
        self.slice_id = slice_id
        self.cache = SetAssociativeCache(
            name=f"L2[{slice_id}]",
            size_bytes=size_bytes,
            assoc=assoc,
            line_bytes=line_bytes,
            policy=policy,
            cache_id=slice_id,
            directory=None,
            perfect=perfect,
            index_divisor=num_slices,
        )
        self.mshr = MSHRFile(mshr_entries)
        self._dirty: set = set()
        self._pending_writebacks: List[int] = []
        self.writebacks = 0

    # -- functional accesses ---------------------------------------------

    def access_load(self, line: int) -> bool:
        """Probe the slice for a load; True on hit."""
        return self.cache.access_load(line)

    def access_store(self, line: int) -> bool:
        """Allocate-on-write, write-back store.

        Returns True when the line was already resident (write hit).  Any
        dirty victim displaced by the allocation is queued for write-back
        (see :meth:`drain_writebacks`).
        """
        if self.cache.perfect:
            self.cache.stats.store_hits += 1
            return True
        hit = self.cache.contains(line)
        if hit:
            self.cache.stats.store_hits += 1
            # refresh recency
            s = self.cache._sets[self.cache.set_index(line)]
            s.touch(line)
        else:
            self.cache.stats.store_misses += 1
            self._install_tracking_dirty(line)
        self._dirty.add(line)
        return hit

    def install(self, line: int):
        """Install a fill returning from DRAM; returns the victim or None."""
        return self._install_tracking_dirty(line)

    def _install_tracking_dirty(self, line: int):
        victim = self.cache.install(line)
        if victim is not None and victim in self._dirty:
            self._dirty.discard(victim)
            self._pending_writebacks.append(victim)
            self.writebacks += 1
        return victim

    # -- write-back plumbing ------------------------------------------------

    def is_dirty(self, line: int) -> bool:
        return line in self._dirty

    def drain_writebacks(self) -> List[int]:
        """Take the dirty victims queued since the last drain."""
        out = self._pending_writebacks
        self._pending_writebacks = []
        return out

    @property
    def stats(self):
        return self.cache.stats
