"""Address interleaving: byte address → cache line → L2 slice → memory channel.

The baseline GPU (Table II) interleaves the global linear address space
across the address-sliced L2 banks.  We interleave at cache-line
granularity (128 B) rather than the paper's 256 B chunks: home-DC-L1
selection (Section V-A) also operates at line granularity, and using one
granularity for both keeps the clustered design's NoC#2 invariant — *a
DC-L1 that homes address range r talks only to the L2 slices serving
range r* (Figure 10) — exact instead of approximate.  This substitution is
recorded in DESIGN.md; it does not change any of the contention phenomena
(camping, many-to-few pressure) the paper studies.
"""

from __future__ import annotations


class AddressMap:
    """Resolves the memory-side route of an address.

    Parameters
    ----------
    line_bytes:
        Cache line size (power of two).
    num_l2_slices:
        Number of address-sliced L2 banks.
    num_channels:
        Number of memory controllers; must divide ``num_l2_slices``.
    """

    def __init__(self, line_bytes: int, num_l2_slices: int, num_channels: int):
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ValueError(f"line_bytes {line_bytes} must be a power of two")
        if num_l2_slices <= 0 or num_channels <= 0:
            raise ValueError("slice and channel counts must be positive")
        if num_l2_slices % num_channels != 0:
            raise ValueError(
                f"{num_channels} channels must evenly divide {num_l2_slices} L2 slices"
            )
        self.line_bytes = line_bytes
        self.line_bits = line_bytes.bit_length() - 1
        self.num_l2_slices = num_l2_slices
        self.num_channels = num_channels
        self._slices_per_channel = num_l2_slices // num_channels

    def line_of(self, addr: int) -> int:
        """Cache-line index of a byte address."""
        return addr >> self.line_bits

    def addr_of_line(self, line: int) -> int:
        """First byte address of a line (inverse of :meth:`line_of`)."""
        return line << self.line_bits

    def l2_slice_of_line(self, line: int) -> int:
        """L2 slice serving ``line`` (line-interleaved)."""
        return line % self.num_l2_slices

    def l2_slice_of(self, addr: int) -> int:
        """L2 slice serving a byte address."""
        return (addr >> self.line_bits) % self.num_l2_slices

    def channel_of_slice(self, l2_slice: int) -> int:
        """Memory controller behind an L2 slice (contiguous grouping)."""
        return l2_slice // self._slices_per_channel

    def channel_of(self, addr: int) -> int:
        """Memory controller serving a byte address."""
        return self.channel_of_slice(self.l2_slice_of(addr))
