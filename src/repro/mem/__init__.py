"""Memory-side substrate: address interleaving, L2 slices, memory controllers."""

from repro.mem.dram import MemoryController
from repro.mem.interleave import AddressMap
from repro.mem.l2 import L2Slice

__all__ = ["AddressMap", "L2Slice", "MemoryController"]
