"""Memory controllers and DRAM channels.

The paper's baseline has 16 GDDR5 memory controllers with FR-FCFS
scheduling.  For the phenomena this paper studies (how much traffic the L1
level filters before it reaches the pin bandwidth), what matters is each
channel's sustainable bandwidth and loaded latency, not per-bank timing.
We therefore model a channel as a small set of parallel *bank groups*, each
a reservation server: a line fill occupies one bank group for
``service_cycles`` and completes after ``latency_cycles``.  Row-locality
effects of FR-FCFS are folded into the effective service time.

Accesses within a channel are spread across its bank groups by line index,
which reproduces bank-level parallelism and makes severely camped address
patterns (partition camping, Section V-B) hurt at the memory side exactly
as they do in hardware.
"""

from __future__ import annotations

from repro.sim.resources import Server


class MemoryController:
    """One memory channel with ``num_bank_groups`` parallel bank groups."""

    def __init__(
        self,
        channel_id: int,
        service_cycles: float,
        latency_cycles: float,
        num_bank_groups: int = 4,
    ):
        if num_bank_groups <= 0:
            raise ValueError("need at least one bank group")
        self.channel_id = channel_id
        self.num_bank_groups = num_bank_groups
        self.banks = [
            Server(f"MC{channel_id}.bg{i}", service_cycles, latency_cycles)
            for i in range(num_bank_groups)
        ]
        self.accesses = 0

    def bank_of(self, line: int) -> Server:
        """Bank group serving ``line`` within this channel."""
        return self.banks[line % self.num_bank_groups]

    def attach_sanitizer(self, ledger) -> None:
        """Attach a sanitizer ledger to every bank group (reservation
        validation + watchdog holder attribution)."""
        for bank in self.banks:
            bank.attach_sanitizer(ledger)

    def access(self, now: float, line: int, size: float = 1.0, owner=None) -> float:
        """Reserve the owning bank group; returns completion time.
        ``owner`` attributes the reservation (watchdog wait graphs)."""
        self.accesses += 1
        return self.bank_of(line).reserve(now, size, owner)

    def busy_cycles(self) -> float:
        return sum(b.busy_cycles for b in self.banks)

    def utilization(self, total_cycles: float) -> float:
        """Mean bank-group utilization of this channel."""
        if total_cycles <= 0:
            return 0.0
        return self.busy_cycles() / (total_cycles * self.num_bank_groups)
