"""CACTI-like cache area model.

The paper uses CACTI 6.5 for two area arguments (Section VIII):

* aggregating the L1 budget into fewer, larger banks saves ~8% cache area
  (fewer per-bank peripheral circuits and ports);
* the four queues added per DC-L1 node (4 entries x 128 B each) cost 6.25%
  of the total baseline L1 capacity.

We model SRAM area as ``bit_area * capacity + bank_overhead`` per bank,
with the bank overhead calibrated so that halving the bank count (80 x
16 KB → 40 x 32 KB) saves exactly the paper's 8%:

    (C*a + 40*f) = 0.92 * (C*a + 80*f)   =>   f = C*a / 420

Queue storage is costed at the same per-bit rate as cache data (it is
SRAM of the same technology).
"""

from __future__ import annotations

from typing import Dict, Optional

#: mm^2 per byte of SRAM at 22 nm (CACTI-6.5-flavoured ballpark).
BIT_AREA_MM2_PER_BYTE = 1.0e-6 * 140

#: Bank overhead as a fraction of the *baseline total* L1 bit area per bank
#: (calibrated: 80 -> 40 banks saves 8%).
BANK_OVERHEAD_FRACTION = 1.0 / 420.0

#: The paper's DC-L1 node queues: four queues of four 128 B entries.
QUEUES_PER_NODE = 4
QUEUE_ENTRIES = 4
QUEUE_ENTRY_BYTES = 128


def cache_area_mm2(
    total_bytes: int, num_banks: int, reference_total_bytes: Optional[int] = None
) -> float:
    """Area of a cache level of ``total_bytes`` split into ``num_banks``.

    ``reference_total_bytes`` anchors the per-bank overhead (defaults to
    ``total_bytes``, which is correct when comparing same-capacity
    configurations, as every DC-L1 design preserves total L1 capacity).
    """
    if total_bytes <= 0 or num_banks <= 0:
        raise ValueError("capacity and bank count must be positive")
    ref = reference_total_bytes if reference_total_bytes is not None else total_bytes
    bit_area = total_bytes * BIT_AREA_MM2_PER_BYTE
    bank_overhead = ref * BIT_AREA_MM2_PER_BYTE * BANK_OVERHEAD_FRACTION
    return bit_area + num_banks * bank_overhead


def dcl1_node_queue_bytes(num_nodes: int) -> int:
    """Total queue storage added by ``num_nodes`` DC-L1 nodes."""
    return num_nodes * QUEUES_PER_NODE * QUEUE_ENTRIES * QUEUE_ENTRY_BYTES


def l1_level_area_report(
    total_l1_bytes: int,
    baseline_banks: int,
    dcl1_nodes: int,
) -> Dict[str, float]:
    """Figure 18b's L1-level area accounting: cache banks + node queues.

    Returns areas in mm^2 plus the overhead/savings fractions the paper
    quotes (queues ~+6.25% of L1 capacity, bank aggregation ~-8%).
    """
    base_area = cache_area_mm2(total_l1_bytes, baseline_banks, total_l1_bytes)
    dcl1_cache_area = cache_area_mm2(total_l1_bytes, dcl1_nodes, total_l1_bytes)
    queue_bytes = dcl1_node_queue_bytes(dcl1_nodes)
    queue_area = queue_bytes * BIT_AREA_MM2_PER_BYTE
    return {
        "baseline_cache_mm2": base_area,
        "dcl1_cache_mm2": dcl1_cache_area,
        "queue_mm2": queue_area,
        "cache_savings_fraction": 1.0 - dcl1_cache_area / base_area,
        "queue_overhead_fraction": queue_bytes / total_l1_bytes,
        "net_mm2": dcl1_cache_area + queue_area,
        "net_vs_baseline": (dcl1_cache_area + queue_area) / base_area,
    }
