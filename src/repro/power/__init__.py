"""Energy and area accounting: CACTI-like cache area, NoC power/energy."""

from repro.power.cacti import cache_area_mm2, dcl1_node_queue_bytes, l1_level_area_report
from repro.power.energy import EnergyModel, NoCPowerBreakdown

__all__ = [
    "cache_area_mm2",
    "dcl1_node_queue_bytes",
    "l1_level_area_report",
    "EnergyModel",
    "NoCPowerBreakdown",
]
