"""NoC power and energy accounting (Figure 18a).

Combines the DSENT-like static model with per-run dynamic energy from the
simulator's flit-hop counters:

* **static power** depends only on the design's crossbar inventory;
* **dynamic energy** is charged per flit-hop, proportional to link length
  (3.3 mm intra-cluster vs 12.3 mm NoC#2 links, the paper's estimates);
  dynamic *power* is that energy divided by the run's cycle count;
* frequency-boosted crossbars burn the same energy per bit moved — boost
  shows up as higher dynamic power only through the shorter runtime,
  exactly the paper's observation that Boost's dynamic-power cost is
  modest while its energy effect is dominated by the runtime reduction.

The absolute scale between the two components is one calibration constant:
``dyn_scale`` converts flit-hop-mm into the static model's power units.
Its default is back-solved from Figure 18a (baseline dynamic ~= 0.64x
baseline static, which makes -16% static / +20% dynamic net out to the
paper's -2% total); :meth:`EnergyModel.calibrate_dyn_scale` recomputes it
from an actual baseline run, which is what the fig18 experiment does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.designs import DesignSpec
from repro.noc.dsent import DsentModel, design_inventory
from repro.sim.results import SimResult

#: Fig 18a back-solved baseline dynamic/static power ratio.
BASELINE_DYN_STATIC_RATIO = 0.64


@dataclass(frozen=True)
class NoCPowerBreakdown:
    """Static / dynamic / total NoC power of one run (relative units)."""

    design: str
    static: float
    dynamic: float
    cycles: float

    @property
    def total(self) -> float:
        return self.static + self.dynamic

    @property
    def energy(self) -> float:
        """Power x time (relative units)."""
        return self.total * self.cycles

    def normalized_to(self, base: "NoCPowerBreakdown") -> dict:
        return {
            "design": self.design,
            "static": self.static / base.static,
            "dynamic": self.dynamic / base.dynamic if base.dynamic else float("nan"),
            "total": self.total / base.total,
            "energy": self.energy / base.energy,
        }


class EnergyModel:
    """Computes NoC power breakdowns and efficiency metrics for runs."""

    def __init__(self, num_cores: int = 80, num_l2: int = 32,
                 dyn_scale: Optional[float] = None):
        self.num_cores = num_cores
        self.num_l2 = num_l2
        self.dyn_scale = dyn_scale  # units: static-power-units per (flit-hop-mm / cycle)

    # -- calibration -----------------------------------------------------------

    def calibrate_dyn_scale(self, baseline_result: SimResult,
                            baseline_spec: DesignSpec) -> float:
        """Fix ``dyn_scale`` so the baseline run's dynamic power equals
        ``BASELINE_DYN_STATIC_RATIO`` x its static power."""
        static = self.static_power(baseline_spec)
        hop_mm_per_cycle = self._hop_mm(baseline_result) / max(baseline_result.cycles, 1.0)
        if hop_mm_per_cycle <= 0:
            raise ValueError("baseline run moved no flits; cannot calibrate")
        self.dyn_scale = BASELINE_DYN_STATIC_RATIO * static / hop_mm_per_cycle
        return self.dyn_scale

    # -- components -------------------------------------------------------------

    def static_power(self, spec: DesignSpec) -> float:
        """Static NoC power of a design (relative units)."""
        return DsentModel.static_units(
            design_inventory(spec, self.num_cores, self.num_l2)
        )

    @staticmethod
    def _hop_mm(result: SimResult) -> float:
        return sum(hops * mm for hops, mm, _f in result.noc_traffic)

    def dynamic_power(self, result: SimResult) -> float:
        """Dynamic NoC power of a run (relative units)."""
        if self.dyn_scale is None:
            raise RuntimeError("call calibrate_dyn_scale() first")
        if result.cycles <= 0:
            return 0.0
        return self.dyn_scale * self._hop_mm(result) / result.cycles

    def breakdown(self, result: SimResult, spec: DesignSpec) -> NoCPowerBreakdown:
        return NoCPowerBreakdown(
            design=spec.label or str(spec),
            static=self.static_power(spec),
            dynamic=self.dynamic_power(result),
            cycles=result.cycles,
        )

    # -- efficiency metrics (Section VIII's energy analysis) ---------------------

    def perf_per_watt(self, result: SimResult, spec: DesignSpec) -> float:
        """IPC per unit NoC power."""
        b = self.breakdown(result, spec)
        return result.ipc / b.total if b.total > 0 else 0.0

    def perf_per_energy(self, result: SimResult, spec: DesignSpec) -> float:
        """IPC per unit NoC energy (the paper's energy-efficiency metric)."""
        b = self.breakdown(result, spec)
        return result.ipc / b.energy if b.energy > 0 else 0.0
