#!/usr/bin/env python3
"""Render paper figures as SVG charts (no plotting libraries needed).

Runs the corresponding experiments (memoized within the invocation) and
writes standalone SVGs under ``figures/``:

* fig06 / fig12 — NoC area & static power bars (analytical, instant),
* fig14 — per-app speedup bars for all four proposed designs,
* fig15 — the speedup S-curves,
* fig17 — L1/DC-L1 port-utilization S-curves,
* fig01 — replication / miss-rate characterization bars.

Usage::

    python examples/render_figures.py [--scale 0.5] [ids...]

Default ids: fig06 fig12 (instant).  Add fig14/fig15/fig17/fig01 for the
simulation-backed charts.
"""

import argparse
import pathlib

from repro.analysis import svg
from repro.experiments.base import Runner
from repro.experiments.registry import run_experiment
from repro.sim.config import SimConfig

OUT = pathlib.Path(__file__).resolve().parent.parent / "figures"


def render_area_power(report, out_name):
    cats = [str(r["config"]) for r in report.rows]
    chart = svg.bar_chart(
        cats,
        {
            "NoC area": [r["area_norm"] for r in report.rows],
            "static power": [r["static_power_norm"] for r in report.rows],
        },
        title=report.title,
        y_label="normalized to baseline",
        baseline=1.0,
    )
    return svg.write(chart, OUT / out_name)


def render_fig14(report):
    designs = [c for c in report.columns if c not in ("app", "sensitive")]
    cats = [r["app"] for r in report.rows]
    chart = svg.bar_chart(
        cats,
        {d: [r[d] for r in report.rows] for d in designs},
        title="Figure 14: IPC normalized to the private-L1 baseline",
        y_label="speedup",
        width=1400,
        baseline=1.0,
    )
    return svg.write(chart, OUT / "fig14_speedups.svg")


def render_fig15(report):
    designs = [c for c in report.columns if c != "rank"]
    chart = svg.line_chart(
        {d: [r[d] for r in report.rows] for d in designs},
        title="Figure 15: speedup S-curves (apps sorted per design)",
        y_label="speedup vs baseline",
        x_label="applications (ascending)",
    )
    return svg.write(chart, OUT / "fig15_scurve.svg")


def render_fig17(report):
    designs = [c for c in report.columns if c != "app"]
    chart = svg.line_chart(
        {d: [r[d] for r in report.rows] for d in designs},
        title="Figure 17: max L1/DC-L1 data-port utilization",
        y_label="utilization",
        x_label="applications (ascending baseline)",
    )
    return svg.write(chart, OUT / "fig17_utilization.svg")


def render_fig01(report):
    cats = [r["app"] for r in report.rows]
    chart = svg.bar_chart(
        cats,
        {
            "replication ratio": [r["replication_ratio"] for r in report.rows],
            "L1 miss rate": [r["l1_miss_rate"] for r in report.rows],
        },
        title="Figure 1: replication ratio and L1 miss rate (ascending replication)",
        y_label="fraction",
        width=1400,
        y_max=1.05,
    )
    return svg.write(chart, OUT / "fig01_characterization.svg")


def render_topologies(_report=None):
    """The paper's design diagrams (Figures 5, 7 and 10) for Pr40, Sh40
    and Sh40+C10+Boost."""
    from repro.analysis.diagram import design_diagram
    from repro.core.designs import DesignSpec

    paths = []
    for spec in (DesignSpec.private(40), DesignSpec.shared(40),
                 DesignSpec.clustered(40, 10, boost=2.0)):
        name = f"topology_{spec.label.replace('+', '_')}.svg"
        paths.append(svg.write(design_diagram(spec), OUT / name))
    return paths[-1]


RENDERERS = {
    "topology": render_topologies,
    "fig06": lambda rep: render_area_power(rep, "fig06_private_area_power.svg"),
    "fig12": lambda rep: render_area_power(rep, "fig12_clustered_area_power.svg"),
    "fig14": render_fig14,
    "fig15": render_fig15,
    "fig17": render_fig17,
    "fig01": render_fig01,
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("ids", nargs="*", default=["fig06", "fig12"])
    parser.add_argument("--scale", type=float, default=0.5)
    args = parser.parse_args()
    unknown = [i for i in args.ids if i not in RENDERERS]
    if unknown:
        parser.error(f"no renderer for {unknown}; choose from {sorted(RENDERERS)}")
    runner = Runner(SimConfig(scale=args.scale))
    for exp_id in args.ids:
        # "topology" renders pure geometry — no experiment behind it.
        report = None if exp_id == "topology" else run_experiment(exp_id, runner)
        path = RENDERERS[exp_id](report)
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
