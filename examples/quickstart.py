#!/usr/bin/env python3
"""Quickstart: compare the conventional GPU cache hierarchy against the
paper's final DC-L1 design on one replication-heavy application.

Runs T-AlexNet (the paper's highest-replication workload, ~95% of its L1
misses are resident in sibling L1s) on:

* the private-L1 baseline,
* Sh40+C10+Boost — 40 decoupled L1 nodes, 10 shared clusters, with the
  small NoC#1 crossbars clocked 2x,

and prints the headline metrics the paper argues from: IPC, DC-L1 miss
rate, replication ratio, mean replica count and round-trip latency.

Usage::

    python examples/quickstart.py [scale]

``scale`` (default 0.5) multiplies the workload size; 1.0 is the
calibrated benchmark scale.
"""

import sys

from repro import DesignSpec, SimConfig, get_app, simulate


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    cfg = SimConfig(scale=scale)
    app = get_app("T-AlexNet")

    print(f"Simulating {app.name} at scale {scale:g} "
          f"({int(app.total_accesses * scale)} memory accesses, 80 cores)...")

    baseline = simulate(app, DesignSpec.baseline(), cfg)
    boosted = simulate(app, DesignSpec.clustered(40, 10, boost=2.0), cfg)

    header = f"{'metric':24s} {'Baseline':>12s} {'Sh40+C10+Boost':>15s}"
    print()
    print(header)
    print("-" * len(header))
    rows = [
        ("IPC", f"{baseline.ipc:.2f}", f"{boosted.ipc:.2f}"),
        ("L1 miss rate", f"{baseline.l1_miss_rate:.1%}", f"{boosted.l1_miss_rate:.1%}"),
        ("replication ratio", f"{baseline.replication_ratio:.1%}",
         f"{boosted.replication_ratio:.1%}"),
        ("mean replicas/line", f"{baseline.mean_replicas:.1f}",
         f"{boosted.mean_replicas:.1f}"),
        ("load round trip (cyc)", f"{baseline.load_rtt_mean:.0f}",
         f"{boosted.load_rtt_mean:.0f}"),
        ("DRAM accesses", str(baseline.dram_accesses), str(boosted.dram_accesses)),
    ]
    for name, b, d in rows:
        print(f"{name:24s} {b:>12s} {d:>15s}")
    print()
    print(f"Speedup: {boosted.speedup_vs(baseline):.2f}x "
          f"(the paper reports up to 2.9x for T-AlexNet under shared DC-L1s)")


if __name__ == "__main__":
    main()
