#!/usr/bin/env python3
"""Build a custom application profile and study how DC-L1 designs react.

This example constructs a synthetic workload from scratch — you choose how
much data is shared between cores, how much temporal locality the streams
have, and whether the addresses camp on a few home DC-L1s — and sweeps it
across the paper's designs.  It is the template for studying *your* app's
behaviour under decoupled L1 designs.

Usage::

    python examples/custom_workload.py [shared_fraction] [camp_fraction]

Defaults: shared_fraction 0.8, camp_fraction 0.0.  Try::

    python examples/custom_workload.py 0.8 0.0    # replication-sensitive
    python examples/custom_workload.py 0.0 0.0    # private: DC-L1 neutral
    python examples/custom_workload.py 0.8 0.9    # camping: Sh40 collapses
"""

import sys

from repro import AppProfile, DesignSpec, SimConfig, simulate
from repro.analysis.tables import format_table

DESIGNS = [
    DesignSpec.baseline(),
    DesignSpec.private(40),
    DesignSpec.shared(40),
    DesignSpec.clustered(40, 10),
    DesignSpec.clustered(40, 10, boost=2.0),
]


def main() -> None:
    shared_fraction = float(sys.argv[1]) if len(sys.argv) > 1 else 0.8
    camp_fraction = float(sys.argv[2]) if len(sys.argv) > 2 else 0.0

    profile = AppProfile(
        name="my-app",
        num_ctas=640,
        accesses_per_cta=96,
        wavefront_slots=8,
        compute_gap=3.0,
        mlp=3,
        # 600 shared lines: larger than one 128-line L1, smaller than the
        # 1024-line per-cluster capacity of Sh40+C10.
        shared_lines=600,
        shared_fraction=shared_fraction,
        private_lines=256,
        block_lines=8,
        block_repeats=1,
        camp_fraction=camp_fraction,
        camp_width=4,
        camp_shared=True,
        store_fraction=0.05,
    )
    cfg = SimConfig(scale=1.0)

    print(f"Custom profile: shared_fraction={shared_fraction:g}, "
          f"camp_fraction={camp_fraction:g}\n")
    base = None
    rows = []
    for spec in DESIGNS:
        res = simulate(profile, spec, cfg)
        if base is None:
            base = res
        rows.append([
            spec.label,
            f"{res.ipc:.2f}",
            f"{res.speedup_vs(base):.2f}x",
            f"{res.l1_miss_rate:.1%}",
            f"{res.replication_ratio:.1%}",
            f"{res.l1_port_util_max:.1%}",
            f"{res.load_rtt_mean:.0f}",
        ])
    print(format_table(
        ["design", "IPC", "speedup", "miss", "replication", "port util", "RTT"],
        rows))

    print(
        "\nReading the table: replication shrinks with sharing/clustering; "
        "camping shows up as a collapsed Sh40 row that the clustered design "
        "recovers (ten home DC-L1s instead of one)."
    )


if __name__ == "__main__":
    main()
