#!/usr/bin/env python3
"""Multiprogramming: two kernels co-scheduled on one GPU.

Composes two applications into a single workload (interleaved CTAs) and
asks whether the clustered shared DC-L1 design still pays off when
unrelated kernels contend for the same DC-L1 capacity — and how much of
the benefit comes from the kernels actually *sharing* data.

Three scenarios on Sh40+C10+Boost vs the private-L1 baseline:

1. each kernel alone,
2. co-scheduled, sharing their common address space,
3. co-scheduled with isolated footprints (no inter-kernel sharing).

Usage::

    python examples/multiprogram.py [appA] [appB] [scale]

Defaults: T-SqueezeNet + C-BFS at scale 0.4.
"""

import sys

from repro import DesignSpec, SimConfig, get_app, simulate
from repro.analysis.tables import format_table
from repro.workloads.generator import generate_workload
from repro.workloads.mix import footprint_overlap, interleave

BOOST = DesignSpec.clustered(40, 10, boost=2.0)


def evaluate(workload, cfg):
    base = simulate(workload, DesignSpec.baseline(), cfg)
    dcl1 = simulate(workload, BOOST, cfg)
    return base, dcl1


def main() -> None:
    app_a = sys.argv[1] if len(sys.argv) > 1 else "T-SqueezeNet"
    app_b = sys.argv[2] if len(sys.argv) > 2 else "C-BFS"
    scale = float(sys.argv[3]) if len(sys.argv) > 3 else 0.4
    cfg = SimConfig(scale=1.0)  # mixing already carries the scaled traces

    wa = generate_workload(get_app(app_a), scale)
    wb = generate_workload(get_app(app_b), scale)
    print(f"{app_a} + {app_b} (scale {scale:g}); "
          f"footprint overlap {footprint_overlap(wa, wb):.1%}\n")

    rows = []
    for label, workload in (
        (f"{app_a} alone", wa),
        (f"{app_b} alone", wb),
        ("co-scheduled (shared)", interleave([wa, wb])),
        ("co-scheduled (isolated)", interleave([wa, wb], isolate=True)),
    ):
        base, dcl1 = evaluate(workload, cfg)
        rows.append([
            label,
            f"{dcl1.speedup_vs(base):.2f}x",
            f"{base.l1_miss_rate:.1%}",
            f"{dcl1.l1_miss_rate:.1%}",
            f"{dcl1.mean_replicas:.1f}",
        ])
    print(format_table(
        ["scenario", "DC-L1 speedup", "base miss", "DC-L1 miss", "replicas"],
        rows))
    print(
        "\nIsolated co-scheduling needs twice the capacity (higher DC-L1 "
        "miss); with genuinely shared data the clustered caches hold one "
        "copy for both kernels."
    )


if __name__ == "__main__":
    main()
