#!/usr/bin/env python3
"""Regenerate any (or every) table/figure of the paper from the command line.

Thin CLI over :mod:`repro.experiments`: each experiment prints the same
rows/series the paper reports, plus a measured-vs-paper headline summary.

Usage::

    python examples/paper_figures.py --list
    python examples/paper_figures.py fig14
    python examples/paper_figures.py fig06 fig12 tab1     # analytical: instant
    python examples/paper_figures.py --all --scale 0.5

Simulation results are memoized within one invocation, so figure groups
that share runs (fig14/15/16/17) cost their sims once.
"""

import argparse
import sys
import time

from repro.experiments.base import Runner
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.sim.config import SimConfig


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", help="experiment ids (see --list)")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale (1.0 = calibrated)")
    args = parser.parse_args(argv)

    if args.list:
        for exp_id in EXPERIMENTS:
            print(exp_id)
        return 0

    ids = list(EXPERIMENTS) if args.all else args.experiments
    if not ids:
        parser.error("no experiments given (use --all or --list)")
    unknown = [e for e in ids if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; see --list")

    runner = Runner(SimConfig(scale=args.scale))
    for exp_id in ids:
        t0 = time.time()
        report = run_experiment(exp_id, runner)
        print(report.render())
        print(f"({time.time() - t0:.1f}s, {runner.sims_run} sims so far)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
