#!/usr/bin/env python3
"""Design-space exploration: aggregation x clustering x frequency boost.

Sweeps the two knobs the paper exposes —

* **aggregation** ``Y`` (how many DC-L1 nodes the 80 per-core L1s merge
  into: Pr80 ... Pr10), and
* **sharing granularity** ``Z`` (how many clusters the shared organization
  is split into: C1 = fully shared ... CY = fully private),

on one application, and reports speedup, miss rate and the analytical NoC
area/static power of every point, so you can see the paper's Pr40 / C10
sweet spot emerge.

Usage::

    python examples/design_space_sweep.py [app] [scale]

Defaults: T-SqueezeNet at scale 0.5.  Try a camping app (P-2MM) or a
bandwidth-sensitive one (P-2DCONV) to watch the trade-offs move.
"""

import sys

from repro import DesignSpec, SimConfig, get_app, simulate
from repro.analysis.tables import format_table
from repro.noc.dsent import DsentModel, design_inventory


def evaluate(app, spec, cfg, base):
    res = simulate(app, spec, cfg)
    inv = design_inventory(spec, cfg.gpu.num_cores, cfg.gpu.num_l2_slices)
    base_inv = design_inventory(DesignSpec.baseline(), cfg.gpu.num_cores,
                                cfg.gpu.num_l2_slices)
    return [
        spec.label,
        f"{res.speedup_vs(base):.2f}x",
        f"{res.l1_miss_rate:.1%}",
        f"{res.mean_replicas:.1f}",
        f"{DsentModel.area_units(inv) / DsentModel.area_units(base_inv):.2f}",
        f"{DsentModel.static_units(inv) / DsentModel.static_units(base_inv):.2f}",
    ]


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "T-SqueezeNet"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    app = get_app(app_name)
    cfg = SimConfig(scale=scale)
    base = simulate(app, DesignSpec.baseline(), cfg)

    print(f"Design-space sweep on {app.name} (scale {scale:g}, baseline IPC "
          f"{base.ipc:.2f})\n")

    rows = []
    print("Aggregation sweep (private DC-L1s, Section IV):")
    for y in (80, 40, 20, 10):
        rows.append(evaluate(app, DesignSpec.private(y), cfg, base))
    print(format_table(
        ["design", "speedup", "miss", "replicas", "NoC area", "NoC static"], rows))

    rows = []
    print("\nClustering sweep at Y=40 (Sections V-VI):")
    for z in (1, 5, 10, 20, 40):
        rows.append(evaluate(app, DesignSpec.clustered(40, z, label=f"Sh40+C{z}"),
                             cfg, base))
    rows.append(evaluate(app, DesignSpec.clustered(40, 10, boost=2.0), cfg, base))
    print(format_table(
        ["design", "speedup", "miss", "replicas", "NoC area", "NoC static"], rows))


if __name__ == "__main__":
    main()
