#!/usr/bin/env python3
"""Explore the analytical NoC model: area, static power and max frequency
of every crossbar configuration the paper discusses (no simulation).

Prints:

1. per-crossbar characteristics (area, static power, max clock) for the
   shapes in Figure 13b,
2. whole-design NoC inventories and their normalized area/static power
   (Figures 6 and 12),
3. which designs can legally run the paper's +Boost 1.4 GHz NoC#1 clock.

Usage::

    python examples/noc_explorer.py
"""

from repro import DesignSpec
from repro.analysis.tables import format_table
from repro.noc.dsent import DsentModel, design_inventory
from repro.noc.hierarchical import CDXBarGeometry

SHAPES = [(80, 40), (80, 32), (40, 32), (16, 8), (10, 8), (8, 8), (8, 4), (4, 2), (2, 1)]

DESIGNS = [
    DesignSpec.baseline(),
    DesignSpec.private(80),
    DesignSpec.private(40),
    DesignSpec.private(20),
    DesignSpec.private(10),
    DesignSpec.shared(40),
    DesignSpec.clustered(40, 5),
    DesignSpec.clustered(40, 10),
    DesignSpec.clustered(40, 20),
    DesignSpec.cdxbar(),
]


def main() -> None:
    rows = []
    for n_in, n_out in SHAPES:
        rows.append([
            f"{n_in}x{n_out}",
            f"{DsentModel.crossbar_area_units(n_in, n_out):.0f}",
            f"{DsentModel.crossbar_static_units(n_in, n_out):.1f}",
            f"{DsentModel.max_frequency_ghz(n_in, n_out):.2f}",
            "yes" if DsentModel.supports_frequency(n_in, n_out, 1.4) else "no",
        ])
    print(format_table(
        ["crossbar", "area (u)", "static (u)", "max GHz", "can run 2x700MHz"],
        rows, title="Per-crossbar characteristics (Figure 13b)"))

    base_inv = design_inventory(DesignSpec.baseline(), 80, 32)
    base_area = DsentModel.area_units(base_inv)
    base_static = DsentModel.static_units(base_inv)
    rows = []
    for spec in DESIGNS:
        inv = design_inventory(spec, 80, 32)
        shapes = " + ".join(f"{s.count}x({s.n_in}x{s.n_out})" for s in inv)
        rows.append([
            spec.label,
            shapes,
            f"{DsentModel.area_units(inv) / base_area:.2f}",
            f"{DsentModel.static_units(inv) / base_static:.2f}",
        ])
    print()
    print(format_table(
        ["design", "crossbar inventory", "area (norm)", "static (norm)"],
        rows, title="Whole-design NoC inventories (Figures 6 and 12)"))

    print()
    print(CDXBarGeometry())
    print("\nThe +Boost design is feasible exactly because the clustered "
          "8x4 crossbars clock above 1.4 GHz while 80x32 / 80x40 cannot.")


if __name__ == "__main__":
    main()
