#!/usr/bin/env python3
"""Characterize the 28-application suite and classify replication
sensitivity with the paper's rule (Figure 1 / Section II-A).

For every application this measures, on the private-L1 baseline:

* replication ratio (fraction of L1 misses resident in a sibling L1),
* L1 miss rate,
* speedup under a 16x larger L1,

then applies the three-part rule (>25% replication AND >50% miss rate AND
>5% capacity speedup) and compares against the paper's classification.

Usage::

    python examples/workload_characterization.py [scale]

Note: the characterization is volume-dependent — at very small scales the
capacity-sensitivity criterion weakens (fewer re-touches per line), so use
scale >= 0.5 for a faithful classification.
"""

import sys

from repro import DesignSpec, SimConfig, all_apps, simulate
from repro.analysis.classify import classify
from repro.analysis.tables import format_table
from repro.workloads.suite import REPLICATION_SENSITIVE


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    cfg = SimConfig(scale=scale)
    cfg16 = SimConfig(scale=scale, l1_latency_override=cfg.gpu.l1_latency)
    big = DesignSpec.baseline(l1_size_mult=16.0)

    rows = []
    agree = 0
    print(f"Characterizing 28 applications at scale {scale:g} (two runs each)...")
    for prof in all_apps():
        base = simulate(prof, DesignSpec.baseline(), cfg)
        big_res = simulate(prof, big, cfg16)
        row = classify(base, big_res)
        expected = prof.name in REPLICATION_SENSITIVE
        agree += row.replication_sensitive == expected
        rows.append([
            row.app,
            f"{row.replication_ratio:.1%}",
            f"{row.l1_miss_rate:.1%}",
            f"{row.speedup_16x:.2f}x",
            "sensitive" if row.replication_sensitive else "-",
            "sensitive" if expected else "-",
        ])
    rows.sort(key=lambda r: float(r[1].rstrip("%")))
    print(format_table(
        ["app", "replication", "miss rate", "16x speedup", "measured", "paper"],
        rows,
        title="\nFigure 1 characterization (ascending replication ratio)",
    ))
    print(f"\nClassification agreement with the paper: {agree}/28")


if __name__ == "__main__":
    main()
