# Convenience targets for the DC-L1 reproduction.

PYTHON ?= python
SCALE ?= 1.0

.PHONY: install test bench bench-quick figures characterize clean loc lint sanitize-test race flow purity shard heat analyze profile perf-smoke

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-out:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-out:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

bench-quick:
	REPRO_SCALE=0.25 $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Static analysis: SimLint always runs (no dependencies beyond the repo);
# ruff/mypy run when installed (pip install -e .[dev]) and are skipped
# with a notice otherwise, so the target works in minimal containers.
lint:
	PYTHONPATH=src $(PYTHON) -m repro.cli lint src/repro
	@if $(PYTHON) -c "import ruff" 2>/dev/null; then \
		$(PYTHON) -m ruff check src tests; \
	else echo "ruff not installed - skipping (pip install -e .[dev])"; fi
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy; \
	else echo "mypy not installed - skipping (pip install -e .[dev])"; fi

# SimRace: static same-cycle ordering-hazard pass over the package, then a
# small shadow-shuffle replay that confirms the shipped model is order-free.
race:
	PYTHONPATH=src $(PYTHON) -m repro.cli race src/repro
	PYTHONPATH=src $(PYTHON) -m repro.cli race --confirm --app P-2MM --design pr40 --scale 0.1 -k 3

# SimFlow: static resource-flow liveness pass (leaks, stray releases,
# acquire-order cycles) over the package.
flow:
	PYTHONPATH=src $(PYTHON) -m repro.cli flow --strict src/repro

# SimPure: static cache-key & fingerprint soundness pass, then a
# mutate-and-replay confirmation that every keyed field changes the key
# and every excluded input leaves results bit-identical.
purity:
	PYTHONPATH=src $(PYTHON) -m repro.cli purity --strict src/repro
	PYTHONPATH=src $(PYTHON) -m repro.cli purity --confirm --scale 0.1

# SimShard: static distribution-safety pass over the sweep layer, then a
# serial/fork/spawn replay that confirms grid points pickle faithfully
# and pooled sweeps stay bit-identical to serial.
shard:
	PYTHONPATH=src $(PYTHON) -m repro.cli shard --strict src/repro
	PYTHONPATH=src $(PYTHON) -m repro.cli shard --confirm --scale 0.1

# SimHeat: static twin-path drift & hot-path hygiene pass, then a
# force-fast vs force-slow differential replay (bit-identical
# fingerprints required) with a tracemalloc allocation profile of the
# hot handlers.
heat:
	PYTHONPATH=src $(PYTHON) -m repro.cli heat --strict src/repro
	PYTHONPATH=src $(PYTHON) -m repro.cli heat --confirm --scale 0.1

# The full static-analysis hexapod (SimLint + SimRace + SimFlow +
# SimPure + SimShard + SimHeat) with a unified summary table and
# combined exit code, then the cheap dynamic confirmations (SimPure
# mutate-and-replay, SimShard serial/fork/spawn replay, SimHeat
# force-fast/force-slow differential replay).
analyze:
	PYTHONPATH=src $(PYTHON) -m repro.cli analyze src/repro
	PYTHONPATH=src $(PYTHON) -m repro.cli purity --confirm --scale 0.1
	PYTHONPATH=src $(PYTHON) -m repro.cli shard --confirm --scale 0.1
	PYTHONPATH=src $(PYTHON) -m repro.cli heat --confirm --scale 0.1 --no-alloc

# Run the simulator-facing test suites with the SimSanitizer ledger on.
sanitize-test:
	REPRO_SANITIZE=1 $(PYTHON) -m pytest -q tests/test_sanitizer.py \
		tests/test_system.py tests/test_validation.py tests/test_experiments.py

# Per-handler event profile of the acceptance workload (SimTurbo
# observability; see docs/performance.md for how to read the table).
profile:
	PYTHONPATH=src $(PYTHON) -m repro.cli profile --app T-AlexNet --design Sh40 --scale $(SCALE)

# Engine throughput smoke: fingerprint-gated; timing recorded in
# benchmarks/results/engine.txt and machine-readably in
# benchmarks/results/engine.json (the CI perf-regression baseline —
# commit the refreshed json to re-baseline).
perf-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_bench_engine.py -q
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_bench_sweep.py -q

figures:
	$(PYTHON) examples/paper_figures.py --all --scale $(SCALE)

characterize:
	$(PYTHON) examples/workload_characterization.py $(SCALE)

experiments-md:
	$(PYTHON) -m repro.experiments.reporting

figures-svg:
	$(PYTHON) examples/render_figures.py topology fig06 fig12

loc:
	@find src tests benchmarks examples -name '*.py' | xargs wc -l | tail -1

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
