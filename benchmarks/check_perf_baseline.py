"""Perf-regression gate: diff a fresh ``engine.json`` against the
committed baseline.

Usage::

    python benchmarks/check_perf_baseline.py BASELINE.json FRESH.json \
        [--warn-pct 10] [--fail-pct 25] [--allow-missing]

Compares ``events_per_s`` per ``(app, design, scale)`` point.  A fresh
point slower than its baseline by more than ``--warn-pct`` percent gets a
warning; slower by more than ``--fail-pct`` percent fails the gate (exit
1).  Speedups and fresh-only points are reported but never fail — the
baseline is refreshed by committing a new ``engine.json``, not by
loosening the gate.

A baseline point that the fresh run did *not* measure fails the gate
(exit 1): a point silently dropping out of the bench is exactly how a
perf regression escapes unnoticed.  Pass ``--allow-missing`` to restore
the old report-and-continue behaviour when intentionally benching a
subset.

Gate-configuration errors exit 2, distinct from a perf failure:

* unreadable or non-``engine.json`` inputs;
* ``schema_version`` differing between baseline and fresh — the two
  files were written by different recorders and field semantics may not
  line up;
* a baseline point with ``events_per_s`` absent or <= 0 — a drop can
  never be computed against it, so every comparison would silently pass;
* ``--warn-pct`` greater than ``--fail-pct`` — the warn band would
  swallow the fail band;
* no common points compared (unless every miss was ``--allow-missing``-d
  away deliberately... even then, comparing nothing is not a pass).

Fingerprint hashes are compared too: a mismatch means the two files
measured *different simulations* and any timing diff is meaningless, so
that's an immediate exit 2 as well.
"""

from __future__ import annotations

import argparse
import json
import sys


def _load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"check_perf_baseline: cannot read {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)
    if not isinstance(doc, dict) or "points" not in doc:
        print(f"check_perf_baseline: {path} is not an engine.json document",
              file=sys.stderr)
        raise SystemExit(2)
    return doc


def _index(doc: dict) -> dict:
    return {
        (p["app"], p["design"], p["scale"]): p
        for p in doc.get("points", [])
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="committed engine.json")
    ap.add_argument("fresh", help="freshly measured engine.json")
    ap.add_argument("--warn-pct", type=float, default=10.0,
                    help="warn when events/s drops by more than this percent")
    ap.add_argument("--fail-pct", type=float, default=25.0,
                    help="fail when events/s drops by more than this percent")
    ap.add_argument("--allow-missing", action="store_true",
                    help="report baseline points absent from the fresh run "
                         "instead of failing on them")
    args = ap.parse_args(argv)

    if args.warn_pct > args.fail_pct:
        print(f"check_perf_baseline: --warn-pct ({args.warn_pct:g}) must not "
              f"exceed --fail-pct ({args.fail_pct:g})", file=sys.stderr)
        return 2

    base_doc = _load(args.baseline)
    fresh_doc = _load(args.fresh)
    if base_doc.get("schema_version") != fresh_doc.get("schema_version"):
        print(f"check_perf_baseline: schema_version mismatch — baseline "
              f"{base_doc.get('schema_version')!r} vs fresh "
              f"{fresh_doc.get('schema_version')!r}", file=sys.stderr)
        return 2

    base = _index(base_doc)
    fresh = _index(fresh_doc)
    exit_code = 0
    compared = 0
    for key in sorted(base):
        app, design, scale = key
        label = f"{app}/{design} @ scale {scale:g}"
        if key not in fresh:
            if args.allow_missing:
                print(f"  [skip] {label}: not measured in fresh run "
                      "(--allow-missing)")
            else:
                print(f"  [FAIL] {label}: not measured in fresh run — a "
                      "baseline point the bench no longer covers is an "
                      "unguarded regression surface")
                exit_code = 1
            continue
        b, f = base[key], fresh[key]
        if b.get("fingerprint_sha256") != f.get("fingerprint_sha256"):
            print(f"  [FAIL] {label}: fingerprint mismatch — timing diff "
                  "is between different simulations")
            return 2
        b_eps = b.get("events_per_s")
        f_eps = f.get("events_per_s", 0.0)
        if not isinstance(b_eps, (int, float)) or b_eps <= 0:
            print(f"check_perf_baseline: baseline point {label} has "
                  f"events_per_s={b_eps!r}; no drop is computable against "
                  "it, so the gate cannot guard this point", file=sys.stderr)
            return 2
        compared += 1
        drop_pct = 100.0 * (b_eps - f_eps) / b_eps
        detail = (f"{b_eps:,.0f} -> {f_eps:,.0f} events/s "
                  f"({-drop_pct:+.1f}%)")
        if drop_pct > args.fail_pct:
            print(f"  [FAIL] {label}: {detail}, beyond -{args.fail_pct:g}%")
            exit_code = 1
        elif drop_pct > args.warn_pct:
            print(f"  [warn] {label}: {detail}, beyond -{args.warn_pct:g}%")
        else:
            print(f"  [ok]   {label}: {detail}")
    for key in sorted(set(fresh) - set(base)):
        app, design, scale = key
        print(f"  [new]  {app}/{design} @ scale {scale:g}: "
              f"{fresh[key]['events_per_s']:,.0f} events/s (no baseline)")
    if not compared:
        print("check_perf_baseline: no common points to compare", file=sys.stderr)
        # missing-point failures keep their perf-failure exit code; a
        # clean-but-empty comparison is a gate-configuration error
        return exit_code or 2
    print(f"perf gate: {compared} point(s) compared, "
          f"{'FAIL' if exit_code else 'ok'}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
