"""Perf-regression gate: diff a fresh ``engine.json`` against the
committed baseline.

Usage::

    python benchmarks/check_perf_baseline.py BASELINE.json FRESH.json \
        [--warn-pct 10] [--fail-pct 25]

Compares ``events_per_s`` per ``(app, design, scale)`` point.  A fresh
point slower than its baseline by more than ``--warn-pct`` percent gets a
warning; slower by more than ``--fail-pct`` percent fails the gate (exit
1).  Speedups and points present on only one side are reported but never
fail — the baseline is refreshed by committing a new ``engine.json``,
not by loosening the gate.

Fingerprint hashes are compared too: a mismatch means the two files
measured *different simulations* and any timing diff is meaningless, so
that's an immediate failure (exit 2, like usage errors).
"""

from __future__ import annotations

import argparse
import json
import sys


def _load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"check_perf_baseline: cannot read {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)
    if not isinstance(doc, dict) or "points" not in doc:
        print(f"check_perf_baseline: {path} is not an engine.json document",
              file=sys.stderr)
        raise SystemExit(2)
    return doc


def _index(doc: dict) -> dict:
    return {
        (p["app"], p["design"], p["scale"]): p
        for p in doc.get("points", [])
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="committed engine.json")
    ap.add_argument("fresh", help="freshly measured engine.json")
    ap.add_argument("--warn-pct", type=float, default=10.0,
                    help="warn when events/s drops by more than this percent")
    ap.add_argument("--fail-pct", type=float, default=25.0,
                    help="fail when events/s drops by more than this percent")
    args = ap.parse_args(argv)

    base = _index(_load(args.baseline))
    fresh = _index(_load(args.fresh))
    exit_code = 0
    compared = 0
    for key in sorted(base):
        app, design, scale = key
        label = f"{app}/{design} @ scale {scale:g}"
        if key not in fresh:
            print(f"  [skip] {label}: not measured in fresh run")
            continue
        b, f = base[key], fresh[key]
        if b.get("fingerprint_sha256") != f.get("fingerprint_sha256"):
            print(f"  [FAIL] {label}: fingerprint mismatch — timing diff "
                  "is between different simulations")
            return 2
        compared += 1
        b_eps, f_eps = b["events_per_s"], f["events_per_s"]
        drop_pct = 100.0 * (b_eps - f_eps) / b_eps if b_eps else 0.0
        detail = (f"{b_eps:,.0f} -> {f_eps:,.0f} events/s "
                  f"({-drop_pct:+.1f}%)")
        if drop_pct > args.fail_pct:
            print(f"  [FAIL] {label}: {detail}, beyond -{args.fail_pct:g}%")
            exit_code = 1
        elif drop_pct > args.warn_pct:
            print(f"  [warn] {label}: {detail}, beyond -{args.warn_pct:g}%")
        else:
            print(f"  [ok]   {label}: {detail}")
    for key in sorted(set(fresh) - set(base)):
        app, design, scale = key
        print(f"  [new]  {app}/{design} @ scale {scale:g}: "
              f"{fresh[key]['events_per_s']:,.0f} events/s (no baseline)")
    if not compared:
        print("check_perf_baseline: no common points to compare", file=sys.stderr)
        return 2
    print(f"perf gate: {compared} point(s) compared, "
          f"{'FAIL' if exit_code else 'ok'}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
