"""Bench: regenerate Figure 16 (miss rates + replica counts)."""

from harness import bench_experiment


def test_bench_fig16(benchmark, runner, results_dir):
    rep = bench_experiment(benchmark, runner, results_dir, "fig16")
    s = rep.summary
    # Replica ordering (paper: 7.7 baseline > 5.7 Pr40 > 2.8 Boost > 1 Sh40).
    assert (
        s["baseline_replicas"]
        > s["Pr40_replicas"]
        > s["Sh40+C10+Boost_replicas"]
        > s["Sh40_replicas"]
    )
    assert s["Sh40_replicas"] <= 1.0
    assert s["baseline_replicas"] > 3.0
    # Miss-rate reduction ordering mirrors replication control.
    assert s["Sh40_missN"] < s["Sh40+C10_missN"] < s["Pr40_missN"] < 1.0
