"""Benchmark fixtures.

All benches share one memoizing :class:`~repro.experiments.base.Runner`,
so experiments that consume the same (app, design) matrix — e.g. Figures
14-17 — pay for each simulation once per pytest session.  Every bench
writes its rendered table to ``results/<experiment>.txt`` next to this
directory so the regenerated tables/figures survive output capture.

Workload scale is taken from ``REPRO_SCALE`` (default 1.0, the calibrated
scale; use e.g. ``REPRO_SCALE=0.25 pytest benchmarks/`` for a quick pass —
magnitudes shift at smaller scales, so the shape assertions are lenient).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.base import Runner, default_runner

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def runner() -> Runner:
    return default_runner()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def sweep_cache_dir(tmp_path_factory) -> pathlib.Path:
    """Fresh persistent-cache root shared by the sweep benches, so the
    cold-parallel run populates it and the warm run is served from it."""
    return tmp_path_factory.mktemp("sweep-cache")
