"""Bench: regenerate Section II-A's single-shared-L1 hypothetical."""

from harness import bench_experiment


def test_bench_sec2_single_l1(benchmark, runner, results_dir):
    rep = bench_experiment(benchmark, runner, results_dir, "sec2c")
    # Shape: eliminating replication collapses the miss rate (paper: -89.5%,
    # Tango -99%) and yields a large speedup (paper: 2.9x).
    assert rep.summary["mean_miss_rate_reduction"] > 0.6
    assert rep.summary["tango_miss_rate_reduction"] > 0.8
    assert rep.summary["mean_speedup"] > 1.5
