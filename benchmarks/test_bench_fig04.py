"""Bench: regenerate Figure 4 (private DC-L1 aggregation sweep)."""

from harness import bench_experiment


def test_bench_fig04(benchmark, runner, results_dir):
    rep = bench_experiment(benchmark, runner, results_dir, "fig04")
    s = rep.summary
    # Shape: aggregation reduces misses monotonically (Pr80 -> Pr10)...
    assert s["pr80_miss_reduction"] <= s["pr40_miss_reduction"] + 0.02
    assert s["pr40_miss_reduction"] < s["pr20_miss_reduction"] < s["pr10_miss_reduction"]
    # ...but bandwidth loss makes deep aggregation a net loss: Pr40 is the
    # sweet spot and Pr10 the worst (paper: +15% vs -34%).
    assert s["pr40_speedup"] > s["pr10_speedup"]
    assert s["pr40_speedup"] > 1.0
    assert s["pr10_speedup"] < 1.0
    # Perfect caches: the baseline bound beats Pr80's (4x less peak BW).
    assert s["base_perfect_speedup"] > s["pr80_perfect_speedup"]
    assert s["pr40_perfect_speedup"] > s["pr40_speedup"]
