"""Bench: regenerate Figure 17 (DC-L1 data-port utilization S-curves)."""

from harness import bench_experiment


def test_bench_fig17(benchmark, runner, results_dir):
    rep = bench_experiment(benchmark, runner, results_dir, "fig17")
    # Shape: every DC-L1 design utilizes its (fewer) data ports better than
    # the 80 baseline ports (the paper's inefficiency #2 fix).
    assert rep.summary["all_designs_above_baseline"] == 1.0
    assert rep.summary["Sh40+C10+Boost_mean_util"] > rep.summary["Baseline_mean_util"]
