"""Bench: regenerate Figure 1 (motivation/characterization)."""

from harness import bench_experiment


def test_bench_fig01(benchmark, runner, results_dir):
    rep = bench_experiment(benchmark, runner, results_dir, "fig01")
    # Shape: the suite reproduces the paper's classification — 12
    # replication-sensitive apps, in near-full agreement with Figure 1.
    assert rep.summary["classification_agreement"] >= 0.85
    assert 10 <= rep.summary["num_replication_sensitive"] <= 14
    # T-AlexNet tops the replication scale (paper: 95%).
    assert rep.summary["t_alexnet_replication_ratio"] > 0.85
