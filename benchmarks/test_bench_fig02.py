"""Bench: regenerate Figure 2 (baseline L1 / NoC link utilization)."""

from harness import bench_experiment


def test_bench_fig02(benchmark, runner, results_dir):
    rep = bench_experiment(benchmark, runner, results_dir, "fig02")
    # Shape: the tightly-coupled L1s are badly under-utilized (paper: the
    # maxima across all apps are 18% and 30%).
    assert rep.summary["max_l1_port_utilization"] < 0.5
    assert rep.summary["max_reply_link_utilization"] < 0.6
    assert rep.summary["max_l1_port_utilization"] > 0.02
