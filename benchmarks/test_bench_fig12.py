"""Bench: regenerate Figure 12 (clustered NoC area / static power)."""

import pytest

from harness import bench_experiment


def test_bench_fig12(benchmark, runner, results_dir):
    rep = bench_experiment(benchmark, runner, results_dir, "fig12")
    s = rep.summary
    assert s["c1_area"] == pytest.approx(1.69, abs=0.08)
    assert s["c5_area"] == pytest.approx(0.55, abs=0.03)
    assert s["c10_area"] == pytest.approx(0.50, abs=0.03)
    assert s["c20_area"] == pytest.approx(0.55, abs=0.03)
    assert s["c1_static"] == pytest.approx(1.57, abs=0.08)
    assert s["c10_static"] == pytest.approx(0.84, abs=0.03)
