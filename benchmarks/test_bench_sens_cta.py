"""Bench: regenerate the CTA-scheduler sensitivity study (Section VIII-A)."""

from harness import bench_experiment


def test_bench_sens_cta(benchmark, runner, results_dir):
    rep = bench_experiment(benchmark, runner, results_dir, "sens-cta")
    s = rep.summary
    # Shape: a locality-aware scheduler trims but does not eliminate the
    # benefit (paper: 75% -> 46%).
    assert s["distributed_speedup"] < s["round_robin_speedup"]
    assert s["distributed_speedup"] > 1.1
