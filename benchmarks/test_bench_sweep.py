"""Sweep-engine wall-clock benches: serial vs parallel, cold vs warm cache.

Three runs over the same (application x design) grid — the
replication-sensitive set under the baseline and the final proposed
design, the core of Figures 8/14:

1. serial cold (fresh runner, no disk cache) — the pre-``run_many``
   behaviour and the correctness reference,
2. parallel cold (fresh runner, fresh persistent cache) — misses fan out
   over a process pool and populate the cache,
3. warm cache (fresh runner, same cache) — every point must be served
   from disk with **zero** new simulations.

All three must be ``SimResult.fingerprint()``-identical; the recorded
wall-clock lines land in ``results/sweep.txt``.
"""

from __future__ import annotations

import os

from harness import bench_sweep

from repro.experiments.base import BASELINE, PROPOSED_DESIGNS, Runner, env_scale
from repro.sim.config import SimConfig
from repro.workloads.suite import REPLICATION_SENSITIVE

BOOST = PROPOSED_DESIGNS[-1]
GRID = [(name, spec) for name in REPLICATION_SENSITIVE for spec in (BASELINE, BOOST)]
# At least 2 so the process-pool path is exercised even on tiny hosts.
PARALLEL_JOBS = max(2, min(4, os.cpu_count() or 1))

#: Cross-test state: the serial reference fingerprints.
_STATE: dict = {}


def _fresh_runner(cache) -> Runner:
    return Runner(SimConfig(scale=env_scale()), cache=cache)


def test_sweep_serial_cold(benchmark, results_dir):
    runner = _fresh_runner(cache=False)
    bench_sweep(benchmark, runner, GRID, results_dir, "serial-cold", jobs=1)
    assert runner.sims_run == len(set(GRID))
    _STATE["serial_fp"] = runner.result_fingerprints()


def test_sweep_parallel_cold(benchmark, results_dir, sweep_cache_dir):
    runner = _fresh_runner(cache=str(sweep_cache_dir))
    bench_sweep(
        benchmark, runner, GRID, results_dir, "parallel-cold", jobs=PARALLEL_JOBS
    )
    assert runner.sims_run == len(set(GRID))
    assert runner.result_fingerprints() == _STATE["serial_fp"]


def test_sweep_warm_cache(benchmark, results_dir, sweep_cache_dir):
    runner = _fresh_runner(cache=str(sweep_cache_dir))
    bench_sweep(benchmark, runner, GRID, results_dir, "warm-cache", jobs=1)
    assert runner.sims_run == 0, "warm cache must serve every point from disk"
    assert runner.result_fingerprints() == _STATE["serial_fp"]
