"""Sweep-engine wall-clock benches: serial vs fleet, cold vs warm.

Four runs over the same 24-point (application x design) grid — the
replication-sensitive set under the baseline and the final proposed
design, the core of Figures 8/14:

1. serial cold (``fleet=False``, no pool, no disk cache) — the
   pre-``run_many`` behaviour and the correctness reference,
2. fleet cold (fleet explicitly shut down first, fresh persistent
   cache) — misses fan out over a freshly spun-up warm fleet whose
   workers persist their own results and ship back only cache keys,
3. fleet warm (fresh Runner, *fresh* cache, same live fleet) — every
   point simulates again, but on the already-warm workers: the bench
   isolates SimFleet's reuse win and the non-sim orchestration overhead,
4. warm cache (same cache as run 2, jobs=1) — every point served from
   disk with **zero** new simulations.

All four must be ``SimResult.fingerprint()``-identical.  Human-readable
wall-clock lines land in ``results/sweep.txt``; runs 1-3 are also
upserted into the machine-readable ``results/sweep.json`` (see
``harness.record_sweep_point``), which CI diffs against the committed
copy through ``check_perf_baseline.py``.  Speed is never asserted
in-process — on a single-core host the fleet cannot beat serial on
wall clock, and the thresholds belong in the CI gate.
"""

from __future__ import annotations

import hashlib
import os

from harness import bench_sweep, record_sweep_point

from repro.experiments.base import BASELINE, PROPOSED_DESIGNS, Runner, env_scale
from repro.sim.config import SimConfig
from repro.sim.fleet import shutdown_fleet
from repro.workloads.suite import REPLICATION_SENSITIVE

BOOST = PROPOSED_DESIGNS[-1]
GRID = [(name, spec) for name in REPLICATION_SENSITIVE for spec in (BASELINE, BOOST)]
# At least 2 so the process-pool path is exercised even on tiny hosts.
PARALLEL_JOBS = max(2, min(4, os.cpu_count() or 1))

#: Cross-test state: the serial reference fingerprints.
_STATE: dict = {}


def _fresh_runner(cache, fleet=None) -> Runner:
    return Runner(SimConfig(scale=env_scale()), cache=cache, fleet=fleet)


def _combined_hash(results) -> str:
    """One hash over the whole sweep: sha256 of the concatenated
    per-point fingerprint hashes, in grid order."""
    blob = "".join(r.fingerprint_sha256() for r in results)
    return hashlib.sha256(blob.encode("ascii")).hexdigest()


def _total_events(results) -> int:
    return sum(int(round(r.wall_time_s * r.events_per_s)) for r in results)


def _record(results_dir, label, results, elapsed, jobs, runner, **extra) -> None:
    record_sweep_point(
        results_dir,
        label=label,
        scale=env_scale(),
        n_points=len(GRID),
        jobs=jobs,
        events=_total_events(results),
        wall_s=elapsed,
        events_per_s=_total_events(results) / elapsed if elapsed > 0 else 0.0,
        fingerprint_sha256=_combined_hash(results),
        fleet_stats=runner.fleet_stats or None,
        **extra,
    )


def test_sweep_serial_cold(benchmark, results_dir):
    runner = _fresh_runner(cache=False, fleet=False)
    results, elapsed = bench_sweep(
        benchmark, runner, GRID, results_dir, "serial-cold", jobs=1
    )
    assert runner.sims_run == len(set(GRID))
    _STATE["serial_fp"] = runner.result_fingerprints()
    _record(results_dir, "serial-cold", results, elapsed, 1, runner)


def test_sweep_fleet_cold(benchmark, results_dir, sweep_cache_dir):
    shutdown_fleet()  # force a cold spin-up so the record is honest
    runner = _fresh_runner(cache=str(sweep_cache_dir))
    results, elapsed = bench_sweep(
        benchmark, runner, GRID, results_dir, "fleet-cold", jobs=PARALLEL_JOBS
    )
    assert runner.sims_run == len(set(GRID))
    assert runner.result_fingerprints() == _STATE["serial_fp"]
    assert runner.fleet_stats.get("cold_starts") == 1
    _record(results_dir, "fleet-cold", results, elapsed, PARALLEL_JOBS, runner)


def test_sweep_fleet_warm(benchmark, results_dir, tmp_path_factory):
    # Fresh runner AND fresh cache: every point simulates again, but on
    # the fleet the previous test left warm — no new pool spin-up.
    runner = _fresh_runner(cache=str(tmp_path_factory.mktemp("warm-cache")))
    results, elapsed = bench_sweep(
        benchmark, runner, GRID, results_dir, "fleet-warm", jobs=PARALLEL_JOBS
    )
    assert runner.sims_run == len(set(GRID))
    assert runner.result_fingerprints() == _STATE["serial_fp"]
    assert runner.fleet_stats.get("warm_acquires") == 1
    assert not runner.fleet_stats.get("cold_starts")
    overhead = max(0.0, elapsed - sum(r.wall_time_s for r in results))
    _record(
        results_dir, "fleet-warm", results, elapsed, PARALLEL_JOBS, runner,
        non_sim_overhead_s=overhead,
    )


def test_sweep_warm_cache(benchmark, results_dir, sweep_cache_dir):
    runner = _fresh_runner(cache=str(sweep_cache_dir))
    _, _ = bench_sweep(benchmark, runner, GRID, results_dir, "warm-cache", jobs=1)
    assert runner.sims_run == 0, "warm cache must serve every point from disk"
    assert runner.result_fingerprints() == _STATE["serial_fp"]
