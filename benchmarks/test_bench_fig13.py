"""Bench: regenerate Figure 13 (poor performers + crossbar frequencies)."""

from harness import bench_experiment


def test_bench_fig13(benchmark, runner, results_dir):
    rep = bench_experiment(benchmark, runner, results_dir, "fig13")
    s = rep.summary
    # (b) The boost is only feasible because the clustered crossbars are
    # small: 8x4 clocks above 1.4 GHz, 80x32 cannot (paper Fig 13b).
    assert s["xbar_80x32_supports_2x"] == 0.0
    assert s["xbar_8x4_supports_2x"] == 1.0
    # (a) Boost lifts the poor performers (paper: significant recovery).
    app_rows = [r for r in rep.rows if not str(r["app"]).startswith("xbar")]
    for row in app_rows:
        assert row["Sh40+C10+Boost"] >= row["Sh40+C10"] - 0.05
    campers = {"C-RAY", "P-3MM", "P-GEMM"}
    for row in app_rows:
        if row["app"] in campers:
            # Clustering relieves camping relative to Sh40.
            assert row["Sh40+C10"] > row["Sh40"]
