"""Bench: regenerate the 120-core system-size study (Section VIII-A)."""

from harness import bench_experiment


def test_bench_sens_size(benchmark, runner, results_dir):
    rep = bench_experiment(benchmark, runner, results_dir, "sens-size")
    s = rep.summary
    # Shape: the trend survives scaling (paper: +67% sensitive, ~0%
    # insensitive on 120 cores / 60 DC-L1s / 48 L2s / 24 channels).
    assert s["sensitive_speedup_120"] > 1.25
    assert s["insensitive_speedup_120"] > 0.8
