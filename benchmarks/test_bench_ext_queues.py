"""Bench: finite DC-L1 node queue (Q1) depth sweep."""

from harness import bench_experiment


def test_bench_ext_queues(benchmark, runner, results_dir):
    rep = bench_experiment(benchmark, runner, results_dir, "ext-queues")
    s = rep.summary
    # The paper-equivalent buffering (~8 credits; its node holds 4 queues
    # x 4 entries) behaves close to infinite queues on a well-behaved app;
    # a depth of one visibly throttles a camping app.
    assert s["depth8_close_to_infinite"] == 1.0
    assert s["monotone_in_depth"] == 1.0
    assert s["depth1_throttles_camping"] == 1.0
    # Deeper queues never hurt.
    assert s["alexnet_boost_q8"] >= s["alexnet_boost_q1"] - 0.02
