"""Bench: regenerate Figure 15 (speedup S-curves)."""

from harness import bench_experiment

from repro.analysis.curves import ascii_s_curves


def test_bench_fig15(benchmark, runner, results_dir):
    rep = bench_experiment(benchmark, runner, results_dir, "fig15")
    # Append the actual S-curve chart to the persisted artifact.
    designs = [c for c in rep.columns if c != "rank"]
    curves = {d: [row[d] for row in rep.rows] for d in designs}
    chart = ascii_s_curves(curves, height=14)
    with open(results_dir / "fig15.txt", "a") as fh:
        fh.write("\n" + chart + "\n")
    print(chart)
    # Shape: the boosted clustered design pushes the S-curve tail toward the
    # baseline, far above Sh40's collapsed tail.
    assert rep.summary["boost_tail_above_sh40_tail"] == 1.0
    assert rep.summary["Sh40+C10+Boost_tail"] > 0.6
    assert rep.summary["Sh40_tail"] < 0.6
    # Heads: the big replication-sensitive wins survive in the final design.
    assert rep.summary["Sh40+C10+Boost_head"] > 1.5
