"""Bench: regenerate Figure 14 (overall IPC of all proposed designs)."""

from harness import bench_experiment


def test_bench_fig14(benchmark, runner, results_dir):
    rep = bench_experiment(benchmark, runner, results_dir, "fig14")
    s = rep.summary
    # Shape on replication-sensitive apps (paper: 1.15 / 1.48 / 1.41 / 1.75):
    # every design wins, Pr40 least, Boost most among clustered variants.
    assert s["sensitive_Pr40"] > 1.0
    assert s["sensitive_Sh40"] > s["sensitive_Pr40"]
    assert s["sensitive_Sh40+C10"] > s["sensitive_Pr40"]
    assert s["sensitive_Sh40+C10+Boost"] > s["sensitive_Sh40+C10"]
    assert s["sensitive_Sh40+C10+Boost"] > 1.3
    # Insensitive apps: Sh40 is the worst; Boost recovers most of the loss
    # (paper: -22% vs <1%).
    assert s["insensitive_Sh40"] < s["insensitive_Sh40+C10"]
    assert s["insensitive_Sh40+C10+Boost"] > s["insensitive_Sh40+C10"]
    assert s["insensitive_Sh40+C10+Boost"] > 0.85
    # Net: the final design wins overall (paper: +27%).
    assert s["all_Sh40+C10+Boost"] > 1.0
