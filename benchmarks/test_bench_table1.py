"""Bench: regenerate Table I (NoC shapes + peak L1 bandwidth)."""

from harness import bench_experiment


def test_bench_table1(benchmark, runner, results_dir):
    rep = bench_experiment(benchmark, runner, results_dir, "tab1")
    # Analytical: must match the paper exactly.
    assert rep.summary["pr80_drop"] == 4.0
    assert rep.summary["pr40_drop"] == 8.0
    assert rep.summary["pr20_drop"] == 16.0
    assert rep.summary["pr10_drop"] == 32.0
