"""Bench: regenerate the boosted-baselines study (Section VIII-A)."""

import pytest

from harness import bench_experiment


def test_bench_sens_baseline(benchmark, runner, results_dir):
    rep = bench_experiment(benchmark, runner, results_dir, "sens-base")
    s = rep.summary
    # Shape: strengthened baselines gain, but stay well below the DC-L1
    # design (paper: 33-36% vs 75%).
    assert s["cache_boosted_speedup"] > 1.0
    assert s["dcl1_boost_speedup"] > s["cache_boosted_speedup"]
    assert s["dcl1_boost_speedup"] > s["noc_boosted_speedup"]
    # And they are expensive/infeasible: ~84% more cache area; the 80x32
    # crossbar cannot clock 2x.
    assert s["cache_area_overhead"] == pytest.approx(0.84, abs=0.06)
    assert s["noc_boost_feasible"] == 0.0
