"""Bench: regenerate Figure 11 (cluster-count sweep)."""

from harness import bench_experiment


def test_bench_fig11(benchmark, runner, results_dir):
    rep = bench_experiment(benchmark, runner, results_dir, "fig11")
    s = rep.summary
    # Shape: replication (and with it the miss rate) grows monotonically
    # with cluster count — C1 eliminates it, C40 keeps most of it
    # (paper: -89% / -72% / -61% / -41% / -19%).
    assert (
        s["c1_miss_reduction"]
        > s["c5_miss_reduction"]
        > s["c10_miss_reduction"]
        > s["c20_miss_reduction"]
        > s["c40_miss_reduction"]
    )
    assert s["c1_miss_reduction"] > 0.5
    assert s["c40_miss_reduction"] < 0.45
