"""Bench: regenerate Figure 18 (NoC power breakdown + area accounting)."""

import pytest

from harness import bench_experiment


def test_bench_fig18(benchmark, runner, results_dir):
    rep = bench_experiment(benchmark, runner, results_dir, "fig18")
    s = rep.summary
    # Power shape (paper: static -16%, dynamic +20%, total -2%).
    assert s["static_norm"] < 0.95
    assert s["dynamic_norm"] > 1.0
    assert s["total_norm"] < 1.15
    # Energy falls with runtime (paper: -35%); efficiency rises.
    assert s["energy_norm"] < 1.0
    assert s["perf_per_energy_gain"] > s["perf_per_watt_gain"] > 1.0
    # Area accounting matches the paper's CACTI numbers.
    assert s["queue_overhead"] == pytest.approx(0.0625, abs=0.002)
    assert s["cache_area_saving"] == pytest.approx(0.08, abs=0.01)
    assert s["noc_area_norm"] == pytest.approx(0.50, abs=0.03)
