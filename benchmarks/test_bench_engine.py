"""Bench: SimTurbo per-sim engine throughput (the PR's acceptance run).

Runs the acceptance workload — Sh40 on T-AlexNet at the session scale —
once uninstrumented and once under the event profiler, and appends both
wall-clock records to ``results/engine.txt``.  The plain run is also
upserted into the machine-readable ``results/engine.json`` (see
``harness.record_engine_point``); CI diffs a fresh copy against the
committed one to gate events/s regressions (``check_perf_baseline.py``).

Gating here is *fingerprint only*: at the calibrated scale the run must
reproduce the pre-SimTurbo golden hash bit-exactly, and the profiled run
must match the plain run at any scale.  The timing numbers are recorded
for trend-watching but never asserted in-process — wall clock is
hardware, and the regression thresholds live in the CI gate where a
noisy runner can be re-tried without invalidating the simulation.
"""

from harness import record_engine_point

from repro.core.designs import DesignSpec
from repro.experiments.base import env_scale
from repro.sim.config import SimConfig
from repro.sim.profiler import profile_simulation
from repro.sim.system import simulate
from repro.workloads.suite import get_app

# SHA-256 of the canonical JSON fingerprint of (T-AlexNet, Sh40,
# scale=1.0), captured on the pre-SimTurbo tree (commit 23318a7).
GOLDEN_SCALE_1 = "ca1e6b42fd1c84d054d5058959da554e794eabc35c13b1c8ff431c71e19f6f9d"


def _hash(res) -> str:
    return res.fingerprint_sha256()


def test_bench_engine(benchmark, results_dir):
    scale = env_scale()
    app = get_app("T-AlexNet")
    spec = DesignSpec.shared(40)
    cfg = SimConfig(scale=scale)

    # Plain (fast-path) run: simulate() directly, never cache-served.
    res = benchmark.pedantic(simulate, args=(app, spec, cfg), rounds=1, iterations=1)

    # Profiled run: same simulation, slow drain, per-handler attribution.
    pres, prof = profile_simulation(app, spec, cfg)

    # -- gates: identity, not speed --------------------------------------
    assert _hash(pres) == _hash(res), "profiled run diverged from fast path"
    if scale == 1.0:
        assert _hash(res) == GOLDEN_SCALE_1, "fast path diverged from seed"

    # -- non-gating timing record ----------------------------------------
    events = int(round(res.wall_time_s * res.events_per_s))
    hottest = prof.rows()[0]
    record = (
        f"engine: scale={scale:g}, events={events}, "
        f"plain {res.wall_time_s:.2f}s ({res.events_per_s:,.0f} events/s), "
        f"profiled {pres.wall_time_s:.2f}s ({pres.events_per_s:,.0f} events/s), "
        f"hottest={hottest.handler} ({hottest.pct:.0f}%)"
    )
    with open(results_dir / "engine.txt", "a", encoding="utf-8") as fh:
        fh.write(record + "\n")
    record_engine_point(
        results_dir,
        app=app.name,
        design=spec.label,
        scale=scale,
        events=events,
        wall_s=res.wall_time_s,
        events_per_s=res.events_per_s,
        fingerprint_sha256=_hash(res),
    )
    print()
    print(record)
