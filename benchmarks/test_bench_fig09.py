"""Bench: regenerate Figure 9 (Sh40 on replication-insensitive apps)."""

from harness import bench_experiment


def test_bench_fig09(benchmark, runner, results_dir):
    rep = bench_experiment(benchmark, runner, results_dir, "fig09")
    s = rep.summary
    # Shape: the five poor performers lose heavily under Sh40 (paper:
    # 40-85% drops), while the group average sits well above them.
    assert s["poor_min_speedup"] < 0.7
    assert s["poor_max_speedup"] < 1.0
    assert s["mean_speedup"] > s["poor_min_speedup"]
    # R-SC benefits: the shared organization smooths its load imbalance.
    assert s["r_sc_speedup"] > s["poor_max_speedup"]
