"""Bench: regenerate Figure 8 (Sh40 on replication-sensitive apps)."""

from harness import bench_experiment


def test_bench_fig08(benchmark, runner, results_dir):
    rep = bench_experiment(benchmark, runner, results_dir, "fig08")
    s = rep.summary
    # Shape: sharing collapses the miss rate (paper: -89%) and buys a large
    # average speedup (paper: +48%), biggest for T-AlexNet (2.9x).
    assert s["mean_miss_reduction"] > 0.5
    assert s["mean_speedup"] > 1.2
    assert s["t_alexnet_speedup"] > 1.5
    # The two exceptions: camping caps P-2MM, bandwidth caps P-3DCONV.
    assert s["p_2mm_speedup"] < s["mean_speedup"]
    assert s["p_3dconv_speedup"] < s["mean_speedup"]
