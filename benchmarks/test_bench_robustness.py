"""Bench: trace-seed robustness of the headline comparison."""

from harness import bench_experiment


def test_bench_robustness(benchmark, runner, results_dir):
    rep = bench_experiment(benchmark, runner, results_dir, "robustness")
    s = rep.summary
    # The headline (large replication-sensitive speedup) must hold for
    # every trace variant with small spread — it is a property of the
    # workload distribution, not of one RNG stream.
    assert s["conclusion_stable"] == 1.0
    assert s["relative_spread"] < 0.15
