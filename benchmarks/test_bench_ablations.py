"""Bench: design-choice ablations (DESIGN.md section 6)."""

from harness import bench_experiment


def test_bench_ablations(benchmark, runner, results_dir):
    rep = bench_experiment(benchmark, runner, results_dir, "ablations")
    s = rep.summary
    # Requested-data replies beat full-line replies on bandwidth-bound apps
    # (Section III's argument for not shipping whole lines on NoC#1).
    assert s["full_line_replies_slower"] == 1.0
    # The frequency boost pays, and a 3x boost pays less per step than 2x.
    assert s["boost2_over_boost1"] == 1.0
    assert s["boost_diminishing_returns"] == 1.0
    # Modulo-interleave and home-bit selection agree for power-of-two M.
    assert abs(s["home_interleave"] - s["home_bits"]) < 0.15
    # LRU DC-L1s are at least as good as FIFO under block-sweep reuse.
    assert s["policy_lru"] >= s["policy_fifo"] - 0.03
