"""Bench: extension study — larger DC-L1s / boosted NoC#2 (Section VIII-A)."""

from harness import bench_experiment


def test_bench_ext_capacity(benchmark, runner, results_dir):
    rep = bench_experiment(benchmark, runner, results_dir, "ext-capacity")
    s = rep.summary
    # More DC-L1 capacity never hurts and generally helps (the paper's
    # closing expectation).
    assert s["capacity_monotone"] == 1.0
    assert s["boost_combined"] >= s["boost"] - 0.02
    # The small per-range NoC#2 crossbars could legally be boosted too.
    assert s["noc2_boost_feasible"] == 1.0
