"""Bench: load-latency percentile comparison (tracing extension)."""

from harness import bench_experiment


def test_bench_ext_latency_dist(benchmark, runner, results_dir):
    rep = bench_experiment(benchmark, runner, results_dir, "ext-latency-dist")
    s = rep.summary
    # The DC-L1 design collapses the *body* of the latency distribution on
    # replication-sensitive apps (the median load becomes a DC-L1 hit)...
    assert s["body_collapses_for_sensitive"] == 1.0
    # ...which is exactly why the all-hits, low-parallelism C-NN suffers.
    assert s["fast_path_slower_for_cnn"] == 1.0
