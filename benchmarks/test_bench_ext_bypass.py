"""Bench: streaming-bypass fills composed with the final DC-L1 design."""

from harness import bench_experiment


def test_bench_ext_bypass(benchmark, runner, results_dir):
    rep = bench_experiment(benchmark, runner, results_dir, "ext-bypass")
    s = rep.summary
    # The complementarity claim: composing per-cache bypass with the DC-L1
    # organization is safe, engages on streaming apps, idles on reuse apps.
    assert s["composition_safe"] == 1.0
    assert s["streaming_engaged"] == 1.0
    assert s["control_quiet"] == 1.0
