"""Bench: regenerate Figure 19 (CDXBar comparison + L1-latency sweep)."""

from harness import bench_experiment


def test_bench_fig19(benchmark, runner, results_dir):
    rep = bench_experiment(benchmark, runner, results_dir, "fig19")
    s = rep.summary
    # (a) CDXBar does not reduce replication: even fully boosted it trails
    # Sh40+C10+Boost on the replication-sensitive apps (paper: 1.29 vs 1.75).
    assert s["boost_sensitive"] > s["cdxbar_2xnoc_sensitive"]
    assert s["cdxbar_2xnoc_sensitive"] > s["cdxbar_sensitive"]
    assert s["cdxbar_sensitive"] < 1.1
    # (b) The benefit survives even a zero-latency L1 (paper: +66%): it is a
    # capacity/bandwidth effect, not a latency one.
    assert s["zero_latency_sensitive"] > 1.25
