"""Bench: regenerate Figure 6 (private DC-L1 NoC area / static power)."""

import pytest

from harness import bench_experiment


def test_bench_fig06(benchmark, runner, results_dir):
    rep = bench_experiment(benchmark, runner, results_dir, "fig06")
    s = rep.summary
    # Calibrated analytical model: within a few points of the paper.
    assert s["pr40_area"] == pytest.approx(0.72, abs=0.03)
    assert s["pr20_area"] == pytest.approx(0.46, abs=0.03)
    assert s["pr10_area"] == pytest.approx(0.33, abs=0.03)
    assert s["pr40_static"] == pytest.approx(0.96, abs=0.03)
    assert s["pr10_static"] < s["pr20_static"] < s["pr40_static"]
