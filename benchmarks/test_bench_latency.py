"""Bench: regenerate the latency analysis (Section VIII)."""

from harness import bench_experiment


def test_bench_latency(benchmark, runner, results_dir):
    rep = bench_experiment(benchmark, runner, results_dir, "latency")
    s = rep.summary
    # The DC-L1 access takes 30 vs the baseline's 28 cycles (2x capacity).
    assert s["dcl1_latency"] == 30.0
    assert s["baseline_l1_latency"] == 28.0
    # Yet the mean round trip *falls* on the replication-sensitive apps
    # (paper: -53%) because far more requests are served at the L1 level.
    assert s["rtt_reduction_sensitive"] > 0.2
