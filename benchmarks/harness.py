"""Shared bench helper: run an experiment once under pytest-benchmark,
persist its rendered table, and return the report for shape assertions."""

from __future__ import annotations

from repro.experiments.base import ExperimentReport, Runner
from repro.experiments.registry import run_experiment


def bench_experiment(benchmark, runner: Runner, results_dir, exp_id: str) -> ExperimentReport:
    """Benchmark one experiment (a single round — the run *is* the artifact)
    and write its table to ``results/<exp_id>.txt``."""
    report = benchmark.pedantic(
        run_experiment, args=(exp_id, runner), rounds=1, iterations=1
    )
    text = report.render()
    (results_dir / f"{exp_id}.txt").write_text(text + "\n")
    print()
    print(text)
    return report
