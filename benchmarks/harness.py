"""Shared bench helpers: run an experiment once under pytest-benchmark,
persist its rendered table, and return the report for shape assertions;
plus the sweep-engine wall-clock helper used by ``test_bench_sweep.py``
and the machine-readable engine-baseline recorder used by
``test_bench_engine.py`` (``results/engine.json``, the perf-regression
gate's committed reference)."""

from __future__ import annotations

import json
import time
from typing import List, Optional, Sequence, Tuple

from repro.experiments.base import ExperimentReport, Runner
from repro.experiments.registry import run_experiment
from repro.sim.results import SimResult


def bench_experiment(benchmark, runner: Runner, results_dir, exp_id: str) -> ExperimentReport:
    """Benchmark one experiment (a single round — the run *is* the artifact)
    and write its table to ``results/<exp_id>.txt``."""
    report = benchmark.pedantic(
        run_experiment, args=(exp_id, runner), rounds=1, iterations=1
    )
    text = report.render()
    (results_dir / f"{exp_id}.txt").write_text(text + "\n")
    print()
    print(text)
    return report


def bench_sweep(
    benchmark,
    runner: Runner,
    grid: Sequence,
    results_dir,
    label: str,
    jobs: Optional[int] = None,
) -> Tuple[List[SimResult], float]:
    """Benchmark one ``Runner.run_many`` sweep over ``grid``.

    Appends a wall-clock + cache-accounting record to ``results/sweep.txt``
    so serial-vs-fleet and cold-vs-warm timings survive output capture,
    and returns ``(results, elapsed_seconds)`` for fingerprint assertions
    and the machine-readable ``sweep.json`` recorder.
    """
    timing = {}

    def go() -> List[SimResult]:
        t0 = time.perf_counter()
        out = runner.run_many(grid, jobs=jobs)
        timing["elapsed"] = time.perf_counter() - t0
        return out

    results = benchmark.pedantic(go, rounds=1, iterations=1)
    disk = runner.disk_cache
    record = (
        f"{label}: {timing['elapsed']:.2f}s wall, points={len(results)}, "
        f"sims_run={runner.sims_run}, jobs={jobs or runner.jobs}, "
        f"disk_hits={disk.hits if disk else 0}"
    )
    if runner.fleet_stats:
        record += (
            f", fleet_cold={runner.fleet_stats.get('cold_starts', 0):.0f}"
            f", fleet_warm={runner.fleet_stats.get('warm_acquires', 0):.0f}"
        )
    with open(results_dir / "sweep.txt", "a", encoding="utf-8") as fh:
        fh.write(record + "\n")
    print()
    print(record)
    return results, timing["elapsed"]


#: Schema of ``results/engine.json`` and ``results/sweep.json``.  Bump
#: when the point shape changes so ``check_perf_baseline.py`` can refuse
#: to diff incompatible files.
ENGINE_BASELINE_SCHEMA = 1


def _upsert_baseline_point(path, point: dict) -> dict:
    """Upsert one measured point into an engine.json-shaped baseline file.

    One entry per ``(app, design, scale)`` key, newest measurement wins,
    deterministic key order and point sort so diffs stay reviewable.
    Returns the document that was written.
    """
    doc = {"schema_version": ENGINE_BASELINE_SCHEMA, "points": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
            if loaded.get("schema_version") == ENGINE_BASELINE_SCHEMA:
                doc = loaded
        except (ValueError, OSError):
            pass  # unreadable baseline: rewrite from scratch
    key = (point["app"], point["design"], point["scale"])
    points = [
        p for p in doc.get("points", [])
        if (p.get("app"), p.get("design"), p.get("scale")) != key
    ]
    points.append(point)
    points.sort(key=lambda p: (p["app"], p["design"], p["scale"]))
    doc = {"schema_version": ENGINE_BASELINE_SCHEMA, "points": points}
    path.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return doc


def record_engine_point(
    results_dir,
    app: str,
    design: str,
    scale: float,
    events: int,
    wall_s: float,
    events_per_s: float,
    fingerprint_sha256: str,
) -> dict:
    """Upsert one measured point into ``results/engine.json``.

    The file is the machine-readable twin of ``engine.txt``.  CI diffs a
    fresh run against the committed copy (``check_perf_baseline.py``) to
    catch events/s regressions; the fingerprint hash rides along so a
    perf diff can also prove it compared identical simulations.

    Returns the document that was written.
    """
    return _upsert_baseline_point(results_dir / "engine.json", {
        "app": app,
        "design": design,
        "scale": scale,
        "events": events,
        "wall_s": round(wall_s, 4),
        "events_per_s": round(events_per_s, 1),
        "fingerprint_sha256": fingerprint_sha256,
    })


def record_sweep_point(
    results_dir,
    label: str,
    scale: float,
    n_points: int,
    jobs: int,
    events: int,
    wall_s: float,
    events_per_s: float,
    fingerprint_sha256: str,
    fleet_stats: Optional[dict] = None,
    non_sim_overhead_s: Optional[float] = None,
) -> dict:
    """Upsert one sweep-throughput measurement into ``results/sweep.json``.

    Same (app, design, scale)-keyed shape as ``engine.json`` so
    ``check_perf_baseline.py`` gates it unchanged: ``app`` encodes the
    grid size (``sweep24``), ``design`` the execution mode
    (``serial-cold`` / ``fleet-cold`` / ``fleet-warm``), and
    ``fingerprint_sha256`` hashes the concatenated per-point result
    hashes, so the gate proves all three modes computed the *same*
    sweep bit-exactly before comparing their throughput.  Extra fields
    (jobs, fleet counters, non-sim overhead) ride along for humans; the
    gate ignores keys it does not know.
    """
    point = {
        "app": f"sweep{n_points}",
        "design": label,
        "scale": scale,
        "events": events,
        "wall_s": round(wall_s, 4),
        "events_per_s": round(events_per_s, 1),
        "fingerprint_sha256": fingerprint_sha256,
        "jobs": jobs,
    }
    if fleet_stats:
        point["fleet"] = {
            k: round(float(v), 4) for k, v in sorted(fleet_stats.items())
        }
    if non_sim_overhead_s is not None:
        point["non_sim_overhead_s"] = round(non_sim_overhead_s, 4)
    return _upsert_baseline_point(results_dir / "sweep.json", point)
