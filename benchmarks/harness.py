"""Shared bench helpers: run an experiment once under pytest-benchmark,
persist its rendered table, and return the report for shape assertions;
plus the sweep-engine wall-clock helper used by ``test_bench_sweep.py``."""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.experiments.base import ExperimentReport, Runner
from repro.experiments.registry import run_experiment
from repro.sim.results import SimResult


def bench_experiment(benchmark, runner: Runner, results_dir, exp_id: str) -> ExperimentReport:
    """Benchmark one experiment (a single round — the run *is* the artifact)
    and write its table to ``results/<exp_id>.txt``."""
    report = benchmark.pedantic(
        run_experiment, args=(exp_id, runner), rounds=1, iterations=1
    )
    text = report.render()
    (results_dir / f"{exp_id}.txt").write_text(text + "\n")
    print()
    print(text)
    return report


def bench_sweep(
    benchmark,
    runner: Runner,
    grid: Sequence,
    results_dir,
    label: str,
    jobs: Optional[int] = None,
) -> List[SimResult]:
    """Benchmark one ``Runner.run_many`` sweep over ``grid``.

    Appends a wall-clock + cache-accounting record to ``results/sweep.txt``
    so serial-vs-parallel and cold-vs-warm-cache timings survive output
    capture, and returns the results for fingerprint assertions.
    """
    timing = {}

    def go() -> List[SimResult]:
        t0 = time.perf_counter()
        out = runner.run_many(grid, jobs=jobs)
        timing["elapsed"] = time.perf_counter() - t0
        return out

    results = benchmark.pedantic(go, rounds=1, iterations=1)
    disk = runner.disk_cache
    record = (
        f"{label}: {timing['elapsed']:.2f}s wall, points={len(results)}, "
        f"sims_run={runner.sims_run}, jobs={jobs or runner.jobs}, "
        f"disk_hits={disk.hits if disk else 0}"
    )
    with open(results_dir / "sweep.txt", "a", encoding="utf-8") as fh:
        fh.write(record + "\n")
    print()
    print(record)
    return results
