"""Shared bench helpers: run an experiment once under pytest-benchmark,
persist its rendered table, and return the report for shape assertions;
plus the sweep-engine wall-clock helper used by ``test_bench_sweep.py``
and the machine-readable engine-baseline recorder used by
``test_bench_engine.py`` (``results/engine.json``, the perf-regression
gate's committed reference)."""

from __future__ import annotations

import json
import time
from typing import List, Optional, Sequence

from repro.experiments.base import ExperimentReport, Runner
from repro.experiments.registry import run_experiment
from repro.sim.results import SimResult


def bench_experiment(benchmark, runner: Runner, results_dir, exp_id: str) -> ExperimentReport:
    """Benchmark one experiment (a single round — the run *is* the artifact)
    and write its table to ``results/<exp_id>.txt``."""
    report = benchmark.pedantic(
        run_experiment, args=(exp_id, runner), rounds=1, iterations=1
    )
    text = report.render()
    (results_dir / f"{exp_id}.txt").write_text(text + "\n")
    print()
    print(text)
    return report


def bench_sweep(
    benchmark,
    runner: Runner,
    grid: Sequence,
    results_dir,
    label: str,
    jobs: Optional[int] = None,
) -> List[SimResult]:
    """Benchmark one ``Runner.run_many`` sweep over ``grid``.

    Appends a wall-clock + cache-accounting record to ``results/sweep.txt``
    so serial-vs-parallel and cold-vs-warm-cache timings survive output
    capture, and returns the results for fingerprint assertions.
    """
    timing = {}

    def go() -> List[SimResult]:
        t0 = time.perf_counter()
        out = runner.run_many(grid, jobs=jobs)
        timing["elapsed"] = time.perf_counter() - t0
        return out

    results = benchmark.pedantic(go, rounds=1, iterations=1)
    disk = runner.disk_cache
    record = (
        f"{label}: {timing['elapsed']:.2f}s wall, points={len(results)}, "
        f"sims_run={runner.sims_run}, jobs={jobs or runner.jobs}, "
        f"disk_hits={disk.hits if disk else 0}"
    )
    with open(results_dir / "sweep.txt", "a", encoding="utf-8") as fh:
        fh.write(record + "\n")
    print()
    print(record)
    return results


#: Schema of ``results/engine.json``.  Bump when the point shape changes
#: so ``check_perf_baseline.py`` can refuse to diff incompatible files.
ENGINE_BASELINE_SCHEMA = 1


def record_engine_point(
    results_dir,
    app: str,
    design: str,
    scale: float,
    events: int,
    wall_s: float,
    events_per_s: float,
    fingerprint_sha256: str,
) -> dict:
    """Upsert one measured point into ``results/engine.json``.

    The file is the machine-readable twin of ``engine.txt``: one entry per
    ``(app, design, scale)`` key, newest measurement wins, deterministic
    key order and point sort so diffs stay reviewable.  CI diffs a fresh
    run against the committed copy (``check_perf_baseline.py``) to catch
    events/s regressions; the fingerprint hash rides along so a perf diff
    can also prove it compared identical simulations.

    Returns the document that was written.
    """
    path = results_dir / "engine.json"
    doc = {"schema_version": ENGINE_BASELINE_SCHEMA, "points": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
            if loaded.get("schema_version") == ENGINE_BASELINE_SCHEMA:
                doc = loaded
        except (ValueError, OSError):
            pass  # unreadable baseline: rewrite from scratch
    key = (app, design, scale)
    points = [
        p for p in doc.get("points", [])
        if (p.get("app"), p.get("design"), p.get("scale")) != key
    ]
    points.append({
        "app": app,
        "design": design,
        "scale": scale,
        "events": events,
        "wall_s": round(wall_s, 4),
        "events_per_s": round(events_per_s, 1),
        "fingerprint_sha256": fingerprint_sha256,
    })
    points.sort(key=lambda p: (p["app"], p["design"], p["scale"]))
    doc = {"schema_version": ENGINE_BASELINE_SCHEMA, "points": points}
    path.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return doc
