"""Legacy setup shim (supports editable installs on older setuptools)."""

from setuptools import setup

setup()
